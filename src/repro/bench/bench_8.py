"""Batch read path + online repack macro-benchmark (BENCH_8.json).

Four sections, one JSON report:

- ``scan`` — the headline gate. A scan-heavy mixed workload (full seq
  scans, predicate scans, index equality probes, projected selects) over
  an MVCC table with version churn, run twice: through the *pre-batching*
  tuple-at-a-time pipeline and through :func:`execute_plan_batches`. The
  baseline is reconstructed explicitly (per-slot ``TupleId`` construction,
  a ``HeapTupleSatisfiesMVCC`` walk per row, generator chains, a per-row
  projection tuple) because the live row path now shares the optimized
  table layer — the same reconstruction precedent as perfgate's
  ``_disable_node_cache``. Both sides read the identical table under one
  snapshot and must produce identical row counts.
- ``sweep`` — the same batched workload at batch sizes {1, 7, 64, 1024}
  plus the engine default, for the EXPERIMENTS.md sensitivity table.
  Every batch size must produce the same row counts.
- ``repack`` — churn-degrades a trie index (two of every three items
  deleted), then times one full ``repack_online()`` pass; reports the
  fill factor before/after (gate: ≥ 0.90 after) and re-verifies the tree
  with ``spgist_check`` plus a survivor search sweep.
- ``locks`` — the wait-path micro-benchmark: W threads ping-ponging an
  EXCLUSIVE key for R rounds under ``LockManager(broadcast=True)`` (the
  legacy single-condition ``notify_all``) vs the default per-waiter
  condition. With N parked waiters a broadcast release wakes all N to
  re-check state; the per-waiter design wakes exactly the thread whose
  verdict changed, so its ``wakeups`` counter must come out strictly
  lower for the identical schedule.

Wall-clock *ratios* are gated (both sides measured in-process on the same
machine); row counts, fill factors, and wakeup orderings are
deterministic and gated exactly by ``tests/bench/test_batch_gate.py``.

CLI::

    PYTHONPATH=src python -m repro.bench.bench_8 --out BENCH_8.json
    PYTHONPATH=src python -m repro.bench.bench_8 --quick
"""

from __future__ import annotations

import json
import threading
import time
from operator import itemgetter
from typing import Any, Callable, Iterator

from repro.core.tree import SPGiSTIndex
from repro.costmodel import CPU_OPS
from repro.engine.catalog import default_catalog
from repro.engine.cost import seqscan_cost
from repro.engine.executor import execute_plan_batches, execute_plan_rows
from repro.engine.planner import IndexScanPlan, Predicate, SeqScanPlan
from repro.engine.table import Column, Table
from repro.engine.txn import Snapshot, TransactionManager
from repro.indexes import TrieIndex
from repro.resilience.check import spgist_check
from repro.server.locks import LockManager, LockMode, LockOwner
from repro.settings import SETTINGS
from repro.storage import BufferPool, DiskManager
from repro.workloads import random_words

#: Benchmark schema version stamped into the JSON.
SCHEMA = "bench8-v1"

#: The satellite-mandated sweep points, plus the engine default at run time.
SWEEP_BATCH_SIZES = (1, 7, 64, 1024)

#: Scale presets: quick is re-run in-process by the CI gate, full is the
#: committed headline. ``churn`` rows are inserted and two-thirds MVCC
#: deleted (left unvacuumed) so visibility filtering does real work.
#: ``passes`` are interleaved baseline/batched repetitions; per-shape wall
#: is the minimum across passes (min-of-k filters scheduler/GC noise out
#: of a ratio gate, the standard micro-bench practice).
SCALES = {
    "quick": {"rows": 4000, "churn": 1200, "probes": 30, "passes": 4},
    "full": {"rows": 12000, "churn": 3600, "probes": 50, "passes": 7},
}


# -- workload table --------------------------------------------------------------


def _build_table(rows: int, churn: int, seed: int = 0) -> Table:
    """An MVCC words table with a trie index and leftover dead versions.

    Base rows are frozen (visible to every snapshot); churn rows are
    inserted by committed transactions and two of every three immediately
    deleted by *other* committed transactions. Nothing is vacuumed, so a
    scan walks ``rows + churn`` versions and must discard the dead ones —
    with many distinct ``(xmin, xmax)`` stamps, which is exactly the
    regime the stamp-memoized batch visibility path is built for.
    """
    txn_manager = TransactionManager()
    table = Table(
        "bench8",
        [Column("key", "varchar"), Column("id", "int")],
        BufferPool(DiskManager(), capacity=256),
        default_catalog(),
        txn=txn_manager,
    )
    words = random_words(rows, seed=801 + seed)
    for i, word in enumerate(words):
        table.insert((word, i))
    extra = random_words(churn, seed=802 + seed)
    tids = []
    chunk = 50  # one committing transaction per 50-row chunk
    for base in range(0, len(extra), chunk):
        txn = txn_manager.begin()
        for i, word in enumerate(extra[base:base + chunk], start=base):
            tids.append(table.insert((word, rows + i), txn=txn))
        txn_manager.commit(txn)
    doomed = [tid for i, tid in enumerate(tids) if i % 3 != 0]
    for base in range(0, len(doomed), chunk):  # one third survives
        txn = txn_manager.begin()
        for tid in doomed[base:base + chunk]:
            table.mvcc_delete(tid, txn)
        txn_manager.commit(txn)
    table.create_index("bench8_idx", "key", "SP_GiST", "SP_GiST_trie")
    table.analyze()
    return table


def _plans(
    table: Table, predicate: Predicate | None, snapshot: Snapshot
) -> tuple[Any, Any]:
    cost = seqscan_cost(table.heap_pages, len(table))
    seq = SeqScanPlan(table, predicate, cost)
    seq.snapshot = snapshot
    index_plan = None
    if predicate is not None:
        index_plan = IndexScanPlan(
            table, predicate, cost, index=table.indexes["bench8_idx"]
        )
        index_plan.snapshot = snapshot
    return seq, index_plan


# -- the reconstructed pre-batching pipeline -------------------------------------


def _baseline_scan(
    table: Table, snapshot: Snapshot
) -> Iterator[tuple[Any, tuple]]:
    """``Table.scan`` as it was before PR 8, verbatim semantics.

    One ``TupleId`` constructed per occupied slot, one full
    ``Snapshot.tuple_visible`` walk per version, one generator resume per
    row — the pipeline the batch executor replaced. Reconstructed here
    because the live ``Table.scan`` now rides the optimized page path, so
    it can no longer serve as its own before-measurement.
    """
    from repro.storage.heap import TupleId

    heap = table.heap
    for page_id in heap._page_ids:
        payload = heap.buffer.fetch(page_id)
        CPU_OPS.add(payload.live_count())
        for slot, tup in enumerate(payload.slots):
            if tup is not None and snapshot.tuple_visible(tup):
                yield TupleId(page_id, slot), tup.record


def _run_baseline(
    table: Table,
    snapshot: Snapshot,
    probes: list[str],
    check_probe: str,
) -> dict[str, Any]:
    """One pass of every query shape through the tuple-at-a-time pipeline."""
    shapes: dict[str, Any] = {}

    started = time.perf_counter()
    count = sum(1 for _ in _baseline_scan(table, snapshot))
    shapes["seq"] = {"wall": time.perf_counter() - started, "rows": count}

    position = table.column_index("key")
    operator = table.catalog.operators_named("=", "varchar")[0]
    started = time.perf_counter()
    count = sum(
        1
        for _tid, row in _baseline_scan(table, snapshot)
        if operator.apply(row[position], check_probe)
    )
    shapes["filter"] = {"wall": time.perf_counter() - started, "rows": count}

    started = time.perf_counter()
    count = 0
    for probe in probes:
        plan = IndexScanPlan(
            table,
            Predicate("key", "=", probe),
            seqscan_cost(table.heap_pages, len(table)),
            index=table.indexes["bench8_idx"],
        )
        plan.snapshot = snapshot
        # execute_plan_rows *is* the pre-PR index-scan path: next(tids)
        # then a per-TID fetch with a per-row visibility walk.
        count += sum(1 for _ in execute_plan_rows(plan))
    shapes["index"] = {"wall": time.perf_counter() - started, "rows": count}

    started = time.perf_counter()
    projected = [
        (row[position],) for _tid, row in _baseline_scan(table, snapshot)
    ]
    shapes["project"] = {
        "wall": time.perf_counter() - started,
        "rows": len(projected),
    }
    return shapes


def _run_batched(
    table: Table,
    snapshot: Snapshot,
    probes: list[str],
    check_probe: str,
    batch_size: int,
) -> dict[str, Any]:
    """The same shapes through the batch executor at ``batch_size``."""
    shapes: dict[str, Any] = {}
    seq_plan, _ = _plans(table, None, snapshot)

    started = time.perf_counter()
    count = sum(
        len(batch)
        for batch in execute_plan_batches(seq_plan, batch_size=batch_size)
    )
    shapes["seq"] = {"wall": time.perf_counter() - started, "rows": count}

    filter_seq, _ = _plans(table, Predicate("key", "=", check_probe), snapshot)
    started = time.perf_counter()
    count = sum(
        len(batch)
        for batch in execute_plan_batches(filter_seq, batch_size=batch_size)
    )
    shapes["filter"] = {"wall": time.perf_counter() - started, "rows": count}

    started = time.perf_counter()
    count = 0
    for probe in probes:
        _seq, index_plan = _plans(table, Predicate("key", "=", probe), snapshot)
        count += sum(
            len(batch)
            for batch in execute_plan_batches(index_plan, batch_size=batch_size)
        )
    shapes["index"] = {"wall": time.perf_counter() - started, "rows": count}

    position = table.column_index("key")
    project = itemgetter(position)
    started = time.perf_counter()
    rows = 0
    for batch in execute_plan_batches(seq_plan, batch_size=batch_size):
        rows += len([(project(row),) for row in batch])
    shapes["project"] = {"wall": time.perf_counter() - started, "rows": rows}
    return shapes


def _min_passes(passes: list[dict[str, Any]]) -> dict[str, Any]:
    """Min wall across passes per shape; rows must agree pass-to-pass."""
    merged: dict[str, Any] = {}
    for shapes in passes:
        for name, shape in shapes.items():
            slot = merged.setdefault(
                name, {"wall": shape["wall"], "rows": shape["rows"]}
            )
            slot["wall"] = min(slot["wall"], shape["wall"])
            assert slot["rows"] == shape["rows"], f"unstable rows for {name}"
    return merged


def run_scan(scale_name: str, seed: int = 0) -> dict[str, Any]:
    """The headline baseline-vs-batched comparison at one scale."""
    import gc

    scale = SCALES[scale_name]
    table = _build_table(scale["rows"], scale["churn"], seed=seed)
    words = random_words(scale["rows"], seed=801 + seed)
    probes = [words[(i * 7) % len(words)] for i in range(scale["probes"])]
    check_probe = words[len(words) // 2]
    snapshot = table.txn.read_snapshot()

    baseline_passes: list[dict[str, Any]] = []
    batched_passes: list[dict[str, Any]] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Interleave the two pipelines so drift (thermal, scheduler) hits
        # both sides alike; min-of-k then discards the noisy repetitions.
        for _ in range(scale["passes"]):
            baseline_passes.append(
                _run_baseline(table, snapshot, probes, check_probe)
            )
            batched_passes.append(
                _run_batched(
                    table, snapshot, probes, check_probe, SETTINGS.batch_size
                )
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    baseline = _min_passes(baseline_passes)
    batched = _min_passes(batched_passes)

    shapes: dict[str, Any] = {}
    base_wall = batch_wall = 0.0
    for name in baseline:
        b, o = baseline[name], batched[name]
        assert b["rows"] == o["rows"], (
            f"differential failure in shape {name}: "
            f"baseline={b['rows']} batched={o['rows']}"
        )
        shapes[name] = {
            "rows": b["rows"],
            "baseline_wall_seconds": b["wall"],
            "batched_wall_seconds": o["wall"],
            "speedup": round(b["wall"] / o["wall"], 3) if o["wall"] else 0.0,
        }
        base_wall += b["wall"]
        batch_wall += o["wall"]
    return {
        "scale": dict(scale) | {"batch": SETTINGS.batch_size},
        "shapes": shapes,
        "mixed": {
            "baseline_wall_seconds": base_wall,
            "batched_wall_seconds": batch_wall,
            "speedup": round(base_wall / batch_wall, 3) if batch_wall else 0.0,
        },
    }


def run_sweep(scale_name: str, seed: int = 0) -> dict[str, Any]:
    """The batched workload at each sweep batch size (plus the default)."""
    import gc

    scale = SCALES[scale_name]
    table = _build_table(scale["rows"], scale["churn"], seed=seed)
    words = random_words(scale["rows"], seed=801 + seed)
    probes = [words[(i * 7) % len(words)] for i in range(scale["probes"])]
    check_probe = words[len(words) // 2]
    snapshot = table.txn.read_snapshot()

    sizes = sorted(set(SWEEP_BATCH_SIZES) | {SETTINGS.batch_size})
    points: dict[str, Any] = {}
    reference_rows: dict[str, int] | None = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for size in sizes:
            shapes = _min_passes(
                [
                    _run_batched(table, snapshot, probes, check_probe, size)
                    for _ in range(scale["passes"])
                ]
            )
            rows = {name: shape["rows"] for name, shape in shapes.items()}
            if reference_rows is None:
                reference_rows = rows
            assert rows == reference_rows, (
                f"batch size {size} changed results: {rows} != {reference_rows}"
            )
            points[str(size)] = {
                "wall_seconds": sum(s["wall"] for s in shapes.values()),
                "rows": sum(rows.values()),
            }
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "scale": dict(scale) | {"default_batch": SETTINGS.batch_size},
        "batch_sizes": points,
        "rows_identical": True,
    }


# -- online repack micro-benchmark -----------------------------------------------


def run_repack(words: int = 5000, seed: int = 0) -> dict[str, Any]:
    """Degrade a trie by churn, then time one full ``repack_online`` pass."""
    pool = BufferPool(DiskManager(), capacity=512)
    index: SPGiSTIndex = TrieIndex(pool, bucket_size=4)
    items = random_words(words, seed=803 + seed)
    index.insert_many([(word, i) for i, word in enumerate(items)])
    fill_loaded = index.store.fill_factor()
    for i, word in enumerate(items):
        if i % 3 != 0:
            index.delete(word, i)
    fill_degraded = index.store.fill_factor()

    started = time.perf_counter()
    stats = index.repack_online()
    wall = time.perf_counter() - started

    report = spgist_check(index)
    survivors = [(w, i) for i, w in enumerate(items) if i % 3 == 0]
    from repro.core.external import Query

    missing = sum(
        1
        for word, i in survivors
        if (word, i) not in index.search_list(Query("=", word))
    )
    return {
        "words": words,
        "survivors": len(survivors),
        "fill_loaded": round(fill_loaded, 4),
        "fill_degraded": round(fill_degraded, 4),
        "fill_after": round(stats.fill_after, 4),
        "subtrees_repacked": stats.subtrees_repacked,
        "nodes_moved": stats.nodes_moved,
        "pages_freed": stats.pages_freed,
        "wall_seconds": wall,
        "check_ok": report.ok,
        "missing_after_repack": missing,
    }


# -- lock wait-path micro-benchmark ----------------------------------------------


def _lock_pingpong(manager: LockManager, threads: int, rounds: int) -> float:
    """``threads`` workers each take/release one EXCLUSIVE key ``rounds``
    times; returns the wall time of the whole contention storm.

    The ``sleep(0)`` inside the critical section yields the GIL while the
    lock is held — without it CPython's timeslice lets each worker finish
    many rounds unopposed and nobody ever parks, which would measure
    nothing. With it, the other workers pile into the wait queue on every
    round, which is exactly the parked-herd shape the broadcast-vs-
    per-waiter comparison is about.
    """
    key = ("table", "bench8")
    barrier = threading.Barrier(threads + 1)
    errors: list[BaseException] = []

    def worker(i: int) -> None:
        owner = LockOwner(f"bench8-w{i}", i + 1)
        try:
            barrier.wait()
            for _ in range(rounds):
                manager.acquire(owner, key, LockMode.EXCLUSIVE)
                time.sleep(0)  # yield while holding: queue the herd
                manager.release_all(owner)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    pool = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall


def run_locks(threads: int = 8, rounds: int = 60) -> dict[str, Any]:
    """Broadcast vs per-waiter wakeups for the identical contention storm."""
    out: dict[str, Any] = {"threads": threads, "rounds": rounds}
    for label, broadcast in (("broadcast", True), ("per_waiter", False)):
        manager = LockManager(broadcast=broadcast)
        wall = _lock_pingpong(manager, threads, rounds)
        stats = manager.stats()
        out[label] = {
            "wall_seconds": wall,
            "wakeups": stats["wakeups"],
            "waits": stats["waits"],
            "grants": stats["grants"],
        }
    broadcast_wakeups = out["broadcast"]["wakeups"]
    per_waiter_wakeups = out["per_waiter"]["wakeups"]
    out["wakeup_ratio"] = round(
        broadcast_wakeups / max(per_waiter_wakeups, 1), 3
    )
    return out


# -- report ----------------------------------------------------------------------


def run(quick_only: bool = False, seed: int = 0) -> dict[str, Any]:
    """Run every section; returns the BENCH_8 report dict."""
    report: dict[str, Any] = {"schema": SCHEMA, "seed": seed}
    report["scan"] = {"quick": run_scan("quick", seed=seed)}
    report["sweep"] = run_sweep("quick", seed=seed)
    report["repack"] = run_repack(seed=seed)
    report["locks"] = run_locks()
    if not quick_only:
        report["scan"]["full"] = run_scan("full", seed=seed)
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the suite and write/print the JSON report."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--quick", action="store_true", help="skip the full-scale scan section"
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed offset (0 = the committed BENCH_8 baseline)",
    )
    args = parser.parse_args(argv)

    report = run(quick_only=args.quick, seed=args.seed)
    for scale_name, section in report["scan"].items():
        mixed = section["mixed"]
        print(f"[{scale_name}] scan-heavy mixed speedup: {mixed['speedup']:.2f}x")
        for name, shape in section["shapes"].items():
            print(
                f"  {name:8s} {shape['speedup']:5.2f}x  "
                f"wall {shape['baseline_wall_seconds']:.3f}s -> "
                f"{shape['batched_wall_seconds']:.3f}s  rows {shape['rows']}"
            )
    print("[sweep] batch-size sensitivity:")
    for size, point in report["sweep"]["batch_sizes"].items():
        print(f"  batch {size:>5s}: {point['wall_seconds']:.3f}s")
    repack = report["repack"]
    print(
        f"[repack] fill {repack['fill_degraded']:.2f} -> "
        f"{repack['fill_after']:.2f} in {repack['wall_seconds']:.3f}s "
        f"({repack['pages_freed']} pages freed, check "
        f"{'OK' if repack['check_ok'] else 'FAILED'})"
    )
    locks = report["locks"]
    print(
        f"[locks] wakeups broadcast={locks['broadcast']['wakeups']} "
        f"per-waiter={locks['per_waiter']['wakeups']} "
        f"({locks['wakeup_ratio']:.1f}x fewer)"
    )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
