"""Table 7: lines of external-method code per instantiation.

The paper reports that the external methods a developer writes to
instantiate an index are < 10 % of the total index code, the remaining
90 % being the shared SP-GiST core. We compute the same ratio from this
repository: one instantiation module vs. (shared framework + that module),
where the shared framework is the SP-GiST core plus the storage substrate
it runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import repro

_PACKAGE_ROOT = Path(repro.__file__).parent

#: The shared "index coding" every instantiation reuses (SP-GiST internal
#: methods + the page/buffer substrate they are written against).
_CORE_PACKAGES = ("core", "storage")

#: Instantiation label → external-methods module(s).
INSTANTIATIONS = {
    "trie": ("indexes/trie.py",),
    "kd-tree": ("indexes/kdtree.py",),
    "P quadtree": ("indexes/pquadtree.py",),
    "PMR quadtree": ("indexes/pmr.py",),
    "suffix tree": ("indexes/suffix.py", "indexes/trie.py"),
}


@dataclass(frozen=True)
class LocRow:
    """One Table 7 column: an instantiation's code-size share."""

    name: str
    external_lines: int
    total_lines: int

    @property
    def percentage(self) -> float:
        return 100.0 * self.external_lines / self.total_lines


def count_code_lines(path: Path) -> int:
    """Non-blank, non-comment source lines (docstrings excluded crudely)."""
    lines = 0
    in_doc = False
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line:
                continue
            if in_doc:
                if line.endswith('"""') or line.endswith("'''"):
                    in_doc = False
                continue
            if line.startswith(('"""', "'''")):
                quote = line[:3]
                # Single-line docstring?
                if not (line.endswith(quote) and len(line) >= 6):
                    in_doc = True
                continue
            if line.startswith("#"):
                continue
            lines += 1
    return lines


def core_lines() -> int:
    """Code lines of the shared framework (SP-GiST core + storage)."""
    total = 0
    for package in _CORE_PACKAGES:
        for path in sorted((_PACKAGE_ROOT / package).glob("*.py")):
            total += count_code_lines(path)
    return total


def table7_rows() -> list[LocRow]:
    """Compute the paper's Table 7 for this repository."""
    shared = core_lines()
    rows = []
    for name, modules in INSTANTIATIONS.items():
        external = sum(
            count_code_lines(_PACKAGE_ROOT / module) for module in modules
        )
        rows.append(LocRow(name, external, shared + external))
    return rows
