"""Global CPU-operation counter for the experiment cost model.

Wall-clock time of a pure-Python reimplementation says more about Python
than about the algorithms (DESIGN.md substitution #2), so the experiments
charge CPU in *algorithmic operation counts* instead: one unit per key
comparison (B+-tree, R-tree entry test) or per Consistent()/distance call
(SP-GiST). Structures increment :data:`CPU_OPS` at those points; the bench
harness snapshots it around measured operations and weighs it into the
modeled cost (see :mod:`repro.bench.harness`).

A process-global counter keeps the hot paths to a single integer add and
needs no plumbing through every structure; benchmarks are single-threaded.
"""

from __future__ import annotations


class OperationCounter:
    """A resettable monotone counter of abstract CPU operations."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, n: int = 1) -> None:
        """Charge ``n`` abstract CPU operations."""
        self.count += n

    def reset(self) -> None:
        """Zero the counter."""
        self.count = 0


#: The process-wide CPU-operation counter used by the cost model.
CPU_OPS = OperationCounter()
