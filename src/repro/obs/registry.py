"""Process-wide metrics registry: counters, gauges, histograms.

The observability substrate for the measurement study (paper Section 5):
every layer of the stack — buffer pool, disk managers, WAL, checksum
boundary, SP-GiST core, executor, incident log — increments metrics here,
so one registry snapshot attributes the cost of an operation to the layer
that paid it. Follows the :data:`repro.costmodel.CPU_OPS` pattern: one
process-global object (:data:`METRICS`), no plumbing through every layer,
single-threaded benchmarks.

Design constraints:

- **Hot-path cheap.** Instrumented call sites bind the metric child once at
  import time; an increment is one attribute add on a ``__slots__`` object.
- **Resettable, never re-registered.** ``reset()`` zeroes values but keeps
  every registered metric object alive, so module-level bindings stay valid
  across test isolation resets.
- **Snapshot/delta.** :meth:`MetricsRegistry.snapshot` returns a plain
  ``{name: value}`` dict and :meth:`MetricsRegistry.delta` subtracts two of
  them — the per-:class:`~repro.bench.harness.Measurement` and per-EXPLAIN
  capture primitive.
- **Prometheus text exposition.** :meth:`MetricsRegistry.render` emits the
  standard ``# HELP`` / ``# TYPE`` / sample-line format, histograms with
  cumulative ``_bucket{le=...}`` series.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_suffix(label_names: Sequence[str], label_values: tuple) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(label_names, label_values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def _zero(self) -> None:
        self.value = 0


class Gauge:
    """A value that can go up and down (one labeled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, n: int | float = 1) -> None:
        """Add ``n`` to the gauge."""
        self.value += n

    def dec(self, n: int | float = 1) -> None:
        """Subtract ``n`` from the gauge."""
        self.value -= n

    def _zero(self) -> None:
        self.value = 0


class Histogram:
    """Fixed-bucket cumulative histogram (one labeled child of a family).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; an implicit
    ``+Inf`` bucket equals ``count``. Bounds are fixed at family creation —
    no dynamic resizing on the hot path.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1

    def _zero(self) -> None:
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0


class MetricFamily:
    """One named metric plus its labeled children.

    With no label names the family has a single default child and the
    family object itself proxies ``inc``/``set``/``observe`` to it, so the
    common unlabeled case stays a one-liner at the call site.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Sequence[str] = (),
        bounds: Sequence[float] = (),
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.label_names = tuple(label_names)
        self.bounds = tuple(bounds)
        self._children: dict[tuple, Counter | Gauge | Histogram] = {}
        if not self.label_names:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self) -> Counter | Gauge | Histogram:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.bounds)

    def labels(self, *label_values: object) -> Counter | Gauge | Histogram:
        """The child for one label-value combination (created on first use)."""
        if len(label_values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {label_values!r}"
            )
        key = tuple(str(v) for v in label_values)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    # -- unlabeled conveniences (proxy to the default child) -----------------

    def inc(self, n: int | float = 1) -> None:
        """Increment the unlabeled default child by ``n``."""
        self._default.inc(n)  # type: ignore[union-attr]

    def set(self, value: int | float) -> None:
        """Set the unlabeled default child (gauges only)."""
        self._default.set(value)  # type: ignore[union-attr]

    def dec(self, n: int | float = 1) -> None:
        """Decrement the unlabeled default child (gauges only)."""
        self._default.dec(n)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        """Record ``value`` into the unlabeled default child (histograms)."""
        self._default.observe(value)  # type: ignore[union-attr]

    @property
    def value(self) -> int | float:
        """Current value of the (unlabeled) default child."""
        if self._default is None:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self._default.value  # type: ignore[union-attr]

    # -- introspection --------------------------------------------------------

    def samples(self) -> Iterator[tuple[str, float]]:
        """Flat ``(sample_name, value)`` pairs for snapshots and export."""
        for key, child in sorted(self._children.items()):
            suffix = _label_suffix(self.label_names, key)
            if isinstance(child, Histogram):
                cumulative = 0
                for bound, bucket in zip(child.bounds, child.bucket_counts):
                    cumulative = bucket
                    yield (
                        f"{self.name}_bucket{_merge_le(suffix, bound)}",
                        float(cumulative),
                    )
                yield (
                    f"{self.name}_bucket{_merge_le(suffix, math.inf)}",
                    float(child.count),
                )
                yield f"{self.name}_sum{suffix}", float(child.sum)
                yield f"{self.name}_count{suffix}", float(child.count)
            else:
                yield f"{self.name}{suffix}", float(child.value)

    def _zero(self) -> None:
        for child in self._children.values():
            child._zero()


def _merge_le(suffix: str, bound: float) -> str:
    le = f'le="{_format_value(float(bound))}"'
    if not suffix:
        return "{" + le + "}"
    return suffix[:-1] + "," + le + "}"


class MetricsRegistry:
    """A named collection of metric families with snapshot/delta/export."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._families: dict[str, MetricFamily] = {}

    # -- registration ---------------------------------------------------------

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Sequence[str],
        bounds: Sequence[float] = (),
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        family = MetricFamily(name, help_text, kind, label_names, bounds)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a counter family (idempotent)."""
        return self._register(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a gauge family (idempotent)."""
        return self._register(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = (1, 2, 4, 8, 16, 32, 64, 128),
        labels: Sequence[str] = (),
    ) -> MetricFamily:
        """Get or create a fixed-bucket histogram family (idempotent)."""
        return self._register(
            name, help_text, "histogram", labels, tuple(sorted(buckets))
        )

    # -- access ---------------------------------------------------------------

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name`` (None when absent)."""
        return self._families.get(name)

    def value(self, name: str) -> float:
        """Unlabeled current value of ``name`` (0.0 when unregistered)."""
        family = self._families.get(name)
        if family is None or family._default is None:
            return 0.0
        return float(family._default.value)

    def families(self) -> list[MetricFamily]:
        """Registered families in name order."""
        return [self._families[k] for k in sorted(self._families)]

    # -- snapshot / delta -----------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Flat ``{sample_name: value}`` view of every registered sample."""
        samples: dict[str, float] = {}
        for family in self._families.values():
            for name, value in family.samples():
                samples[name] = value
        return samples

    @staticmethod
    def delta(
        before: dict[str, float], after: dict[str, float]
    ) -> dict[str, float]:
        """Per-sample difference ``after - before`` (missing keys read 0)."""
        names = set(before) | set(after)
        return {
            name: after.get(name, 0.0) - before.get(name, 0.0)
            for name in names
        }

    # -- export ---------------------------------------------------------------

    def render(self) -> str:
        """Prometheus text exposition format of the whole registry."""
        lines: list[str] = []
        for family in self.families():
            full = f"{self.namespace}_{family.name}"
            if family.help:
                lines.append(f"# HELP {full} {family.help}")
            lines.append(f"# TYPE {full} {family.kind}")
            for name, value in family.samples():
                lines.append(
                    f"{self.namespace}_{name} {_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every metric, keeping all registrations and children alive."""
        for family in self._families.values():
            family._zero()


#: The process-wide registry every instrumented layer reports to.
METRICS = MetricsRegistry()
