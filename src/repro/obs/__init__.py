"""Observability substrate: metrics registry, trace spans, reset helper.

The measurement layer underneath the reproduction's Section 5 experiments:

- :mod:`repro.obs.registry` — process-wide counters, gauges, and
  fixed-bucket histograms (:data:`METRICS`) with snapshot/delta and a
  Prometheus-style text exporter;
- :mod:`repro.obs.spans` — nestable trace spans (:func:`span`) recorded to
  a bounded ring buffer with monotonic timings (:data:`SPANS`).

Instrumented layers bind their metric families at import time and pay one
attribute-add per event; ``reset_observability()`` restores a pristine
state between tests and measurements without invalidating those bindings.
"""

from repro.obs.registry import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.spans import SPANS, SpanRecord, SpanRecorder, span


def reset_observability() -> None:
    """Zero every metric and drop every recorded span (bindings survive)."""
    METRICS.reset()
    SPANS.reset()


__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "SPANS",
    "SpanRecord",
    "SpanRecorder",
    "span",
    "reset_observability",
]
