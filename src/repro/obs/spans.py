"""Lightweight trace spans recorded to a bounded ring buffer.

``with span("index.descend", index=name):`` brackets one logical operation;
spans nest (the recorder keeps a stack, so each finished span knows its
depth and parent) and finished spans land in a ring buffer with monotonic
``time.perf_counter`` timings. The buffer is bounded, so leaving tracing on
during a long benchmark costs a fixed amount of memory.

This is deliberately *not* a distributed-tracing client: single process,
single thread (like :data:`repro.costmodel.CPU_OPS`), no sampling, no
export protocol. It exists so EXPLAIN ANALYZE and the tests can see *where*
inside an operation the time went — index descent vs heap fetch vs WAL.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float  # perf_counter seconds
    duration: float  # seconds
    depth: int  # 0 for a root span
    tags: dict[str, Any] = field(default_factory=dict)
    error: str | None = None  # exception type name when the body raised

    @property
    def duration_ms(self) -> float:
        return self.duration * 1000.0


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("recorder", "name", "tags", "span_id", "parent_id", "start")

    def __init__(
        self, recorder: "SpanRecorder", name: str, tags: dict[str, Any]
    ) -> None:
        self.recorder = recorder
        self.name = name
        self.tags = tags

    def __enter__(self) -> "_ActiveSpan":
        recorder = self.recorder
        self.parent_id = recorder._stack[-1] if recorder._stack else None
        self.span_id = next(recorder._ids)
        recorder._stack.append(self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        end = time.perf_counter()
        recorder = self.recorder
        # Pop back to this span even if a nested span leaked (generator
        # abandoned mid-iteration): everything above it is gone anyway.
        while recorder._stack and recorder._stack[-1] != self.span_id:
            recorder._stack.pop()
        if recorder._stack:
            recorder._stack.pop()
        depth = len(recorder._stack)
        recorder._buffer.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self.start,
                duration=end - self.start,
                depth=depth,
                tags=self.tags,
                error=exc_type.__name__ if exc_type is not None else None,
            )
        )


class _NullSpan:
    """No-op context manager handed out while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Bounded recorder of finished spans (newest kept, oldest dropped)."""

    def __init__(self, capacity: int = 4096, enabled: bool = True) -> None:
        self.capacity = capacity
        self.enabled = enabled
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: list[int] = []
        self._ids = itertools.count(1)

    def span(self, name: str, **tags: Any) -> _ActiveSpan | _NullSpan:
        """Open a span; use as ``with recorder.span("buffer.fetch"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, tags)

    # -- inspection ----------------------------------------------------------

    def records(self, name: str | None = None) -> list[SpanRecord]:
        """Finished spans, oldest first, optionally filtered by name."""
        if name is None:
            return list(self._buffer)
        return [r for r in self._buffer if r.name == name]

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._buffer)

    def total_seconds(self, name: str) -> float:
        """Summed duration of every recorded span called ``name``."""
        return sum(r.duration for r in self._buffer if r.name == name)

    def reset(self) -> None:
        """Drop all finished spans (in-flight stack untouched)."""
        self._buffer.clear()


#: The process-wide span recorder.
SPANS = SpanRecorder()


def span(name: str, **tags: Any) -> _ActiveSpan | _NullSpan:
    """Open a span on the global recorder: ``with span("index.descend"):``."""
    return SPANS.span(name, **tags)
