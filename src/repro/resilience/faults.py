"""Seeded fault injection for any disk manager.

:class:`FaultInjectingDiskManager` decorates a :class:`DiskManager` (in-memory
or file-backed) and perturbs its I/O according to a :class:`FaultPolicy`:

- **transient errors** — reads/writes raise
  :class:`~repro.errors.TransientIOError` with a configured probability;
  the buffer pool's bounded retry absorbs isolated ones.
- **torn writes** — a write persists only a prefix of the page image,
  leaving stale bytes behind it; detected later as
  :class:`~repro.errors.PageChecksumError`.
- **bit flips** — one random bit of the stored image is inverted after a
  write; likewise caught by checksum verification.
- **fail-after-N-ops** — after a budget of operations the device "dies":
  every subsequent read/write raises the permanent
  :class:`~repro.errors.DiskFaultError` (which the buffer pool does *not*
  retry).

All randomness comes from one seeded RNG, so any observed fault schedule is
replayable — the property tests rely on this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DiskFaultError, TransientIOError
from repro.storage.disk import DiskManager


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs for one fault-injection campaign (all probabilities in [0, 1])."""

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    torn_write_rate: float = 0.0
    bit_flip_rate: float = 0.0
    fail_after_ops: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "torn_write_rate",
            "bit_flip_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        if self.fail_after_ops is not None and self.fail_after_ops < 0:
            raise ValueError("fail_after_ops must be >= 0")


@dataclass
class FaultCounters:
    """How many of each fault kind the injector has actually fired."""

    transient_read_errors: int = 0
    transient_write_errors: int = 0
    torn_writes: int = 0
    bit_flips: int = 0
    permanent_failures: int = 0

    @property
    def total(self) -> int:
        return (
            self.transient_read_errors
            + self.transient_write_errors
            + self.torn_writes
            + self.bit_flips
            + self.permanent_failures
        )


class FaultInjectingDiskManager:
    """A :class:`DiskManager` decorator that injects seeded storage faults.

    Wraps *any* disk manager (the duck-typed page-store interface);
    everything not intercepted is delegated to the inner manager, so
    ``sync``/``compact``/``file_bytes`` of a file-backed inner manager stay
    reachable.
    """

    def __init__(self, inner: DiskManager, policy: FaultPolicy) -> None:
        self.inner = inner
        self.policy = policy
        self.injected = FaultCounters()
        self._rng = random.Random(policy.seed)
        self._ops = 0

    # -- fault machinery -----------------------------------------------------

    def _tick(self, kind: str) -> None:
        """Count one device operation; kill the device past the budget."""
        self._ops += 1
        budget = self.policy.fail_after_ops
        if budget is not None and self._ops > budget:
            self.injected.permanent_failures += 1
            raise DiskFaultError(
                f"injected device failure: {kind} after {budget} operations"
            )

    def _maybe_transient(self, rate: float, kind: str, counter: str) -> None:
        if rate and self._rng.random() < rate:
            setattr(self.injected, counter, getattr(self.injected, counter) + 1)
            raise TransientIOError(f"injected transient {kind} error")

    def _corrupt_after_write(self, page_id: int) -> None:
        """Possibly tear or bit-flip the image that was just persisted."""
        policy = self.policy
        if policy.torn_write_rate and self._rng.random() < policy.torn_write_rate:
            raw = self.inner.raw_page_image(page_id)
            if len(raw) > 1:
                keep = self._rng.randrange(1, len(raw))
                self.inner.store_raw_page_image(page_id, raw[:keep])
                self.injected.torn_writes += 1
            return
        if policy.bit_flip_rate and self._rng.random() < policy.bit_flip_rate:
            raw = bytearray(self.inner.raw_page_image(page_id))
            if raw:
                position = self._rng.randrange(len(raw))
                raw[position] ^= 1 << self._rng.randrange(8)
                self.inner.store_raw_page_image(page_id, bytes(raw))
                self.injected.bit_flips += 1

    # -- intercepted page I/O ------------------------------------------------

    def read_page(self, page_id: int) -> Any:
        """Read through the inner manager, possibly raising an injected fault."""
        self._tick("read")
        self._maybe_transient(
            self.policy.read_error_rate, "read", "transient_read_errors"
        )
        return self.inner.read_page(page_id)

    def write_page(self, page_id: int, payload: Any) -> None:
        """Write through the inner manager, possibly corrupting the image."""
        self._tick("write")
        self._maybe_transient(
            self.policy.write_error_rate, "write", "transient_write_errors"
        )
        self.inner.write_page(page_id, payload)
        self._corrupt_after_write(page_id)

    def allocate_page(self) -> int:
        """Allocate a page on the inner manager (counts one device op)."""
        self._tick("allocate")
        return self.inner.allocate_page()

    def deallocate_page(self, page_id: int) -> None:
        """Free a page on the inner manager (counts one device op)."""
        self._tick("deallocate")
        self.inner.deallocate_page(page_id)

    # -- transparent delegation ----------------------------------------------

    @property
    def stats(self) -> Any:
        """The inner manager's I/O counters."""
        return self.inner.stats

    @property
    def num_pages(self) -> int:
        """Number of allocated pages on the inner manager."""
        return self.inner.num_pages

    def page_exists(self, page_id: int) -> bool:
        """True when ``page_id`` is allocated on the inner manager."""
        return self.inner.page_exists(page_id)

    def reset_stats(self) -> None:
        """Zero the inner manager's I/O counters."""
        self.inner.reset_stats()

    def raw_page_image(self, page_id: int) -> bytes:
        """The inner manager's stored image bytes for ``page_id``."""
        return self.inner.raw_page_image(page_id)

    def store_raw_page_image(self, page_id: int, raw: bytes) -> None:
        """Plant raw image bytes on the inner manager (no checksum)."""
        self.inner.store_raw_page_image(page_id, raw)

    def __getattr__(self, name: str) -> Any:
        # sync/close/compact/wal/file_bytes/... of file-backed inner managers.
        return getattr(self.inner, name)


@dataclass(frozen=True)
class ChannelFaultPolicy:
    """Knobs for one WAL-shipping channel (all probabilities in [0, 1]).

    Mirrors :class:`FaultPolicy` one layer up the stack: where that class
    perturbs a disk, this one perturbs the in-process transport that ships
    WAL segments from a primary to a standby (:mod:`repro.replication`).
    """

    seed: int = 0
    drop_rate: float = 0.0  # frame silently lost
    corrupt_rate: float = 0.0  # one bit of the frame flipped in flight
    reorder_rate: float = 0.0  # frame delivered after later frames
    duplicate_rate: float = 0.0  # frame delivered twice

    def __post_init__(self) -> None:
        for name in (
            "drop_rate",
            "corrupt_rate",
            "reorder_rate",
            "duplicate_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")


@dataclass
class ChannelFaultCounters:
    """How many of each channel fault kind have actually fired."""

    drops: int = 0
    corruptions: int = 0
    reorders: int = 0
    duplicates: int = 0

    @property
    def total(self) -> int:
        return self.drops + self.corruptions + self.reorders + self.duplicates


class FaultyChannel:
    """A unidirectional, seeded-lossy frame pipe (primary → one standby).

    ``send`` enqueues a frame subject to the policy; ``poll`` drains
    everything currently deliverable. Reordered frames are held back and
    delivered *after* frames sent later, so a receiver that applies
    segments strictly in sequence must buffer or re-request. All
    randomness comes from the policy's seeded RNG — a chaos schedule's
    fault pattern is replayable from its seed.
    """

    def __init__(self, policy: ChannelFaultPolicy | None = None) -> None:
        self.policy = policy or ChannelFaultPolicy()
        self.injected = ChannelFaultCounters()
        self._rng = random.Random(self.policy.seed)
        self._queue: list[bytes] = []
        self._held: list[bytes] = []  # reordered frames, delivered last

    def send(self, frame: bytes) -> None:
        """Offer one frame for delivery (may drop/corrupt/reorder/dup it)."""
        policy = self.policy
        if policy.drop_rate and self._rng.random() < policy.drop_rate:
            self.injected.drops += 1
            return
        if policy.corrupt_rate and self._rng.random() < policy.corrupt_rate:
            mutated = bytearray(frame)
            if mutated:
                position = self._rng.randrange(len(mutated))
                mutated[position] ^= 1 << self._rng.randrange(8)
            frame = bytes(mutated)
            self.injected.corruptions += 1
        copies = 1
        if policy.duplicate_rate and self._rng.random() < policy.duplicate_rate:
            self.injected.duplicates += 1
            copies = 2
        for _ in range(copies):
            if policy.reorder_rate and self._rng.random() < policy.reorder_rate:
                self.injected.reorders += 1
                self._held.append(frame)
            else:
                self._queue.append(frame)

    def poll(self) -> list[bytes]:
        """Drain deliverable frames: in-order sends first, then held ones."""
        delivered = self._queue + self._held
        self._queue = []
        self._held = []
        return delivered

    @property
    def in_flight(self) -> int:
        """Frames sent but not yet polled (including held ones)."""
        return len(self._queue) + len(self._held)


def corrupt_page(disk: Any, page_id: int, seed: int = 0) -> None:
    """Flip one random bit of a stored page image (test/demo helper)."""
    rng = random.Random(seed)
    raw = bytearray(disk.raw_page_image(page_id))
    if not raw:
        return
    position = rng.randrange(len(raw))
    raw[position] ^= 1 << rng.randrange(8)
    disk.store_raw_page_image(page_id, bytes(raw))
