"""Seeded multi-threaded chaos: concurrent sessions vs. the invariants.

The single-threaded harness (:mod:`repro.resilience.chaos`) drives the
replication state machine through scripted interleavings; this module
drives the *whole server stack* — :class:`~repro.server.SessionManager`
worker pool, :class:`~repro.server.locks.LockManager`, MVCC
first-updater-wins, VACUUM, and replication failover — with real
threads, and asserts the invariants that must hold under **any**
interleaving:

- **Zero acked-commit loss.** A statement acknowledged to a session
  (INSERT returned, COMMIT returned ``COMMIT``) survives everything the
  schedule throws at it, including a mid-schedule primary crash and
  failover on the replicated side.
- **Snapshot isolation.** Rolled-back rows are never visible to any
  reader at any time (no dirty reads), and two reads inside one
  transaction block always agree (no non-repeatable reads), regardless
  of concurrent writers and VACUUM.
- **Structural cleanliness.** ``spgist_check`` is clean on every index —
  all five opclasses locally, plus the replicated primary and standbys —
  after the schedule.

One schedule runs two sides concurrently. The *replicated* side is a
``trie`` :class:`~repro.replication.ReplicaSet` behind a
:class:`~repro.server.ReplicatedDatabase`: writer/reader/vacuum sessions
run through the manager's worker pool (exercising admission control,
backpressure, and standby-read shedding) while a controller thread
crashes the primary mid-schedule and ticks the set through failover. The
*local* side is a plain :class:`~repro.engine.sql.Database` carrying all
five SP-GiST opclasses, with dedicated sessions injecting guaranteed
deadlocks (barrier-synchronized opposite-order updates), lock/statement
timeouts (a holder parks on a row while a victim waits with a tiny
deadline), snapshot-isolation probes, and VACUUM traffic.

Determinism: every session draws its workload from its own
``random.Random(seed * 1009 + index)``, so the *content* of a schedule
reproduces exactly from the seed. Thread interleaving is inherently the
OS's choice — which is the point: the assertions are invariants, valid
under every interleaving, and the transcript records what actually
happened so a red run can be studied.
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
import time
from typing import Any

from repro.engine.sql import Database
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    ReproError,
    ServerOverloadedError,
    StatementTimeoutError,
    TxnError,
)
from repro.replication import ReplicaSet
from repro.resilience.check import spgist_check
from repro.server import ReplicatedDatabase, SessionManager
from repro.server.session import Session
from repro.settings import SETTINGS

#: The five opclasses of the paper, exercised concurrently on the local side.
LOCAL_TABLES = [
    ("mt_trie", "VARCHAR(24)", "SP_GiST_trie"),
    ("mt_suffix", "VARCHAR(24)", "SP_GiST_suffix"),
    ("mt_kdtree", "POINT", "SP_GiST_kdtree"),
    ("mt_pquad", "POINT", "SP_GiST_pquadtree"),
    ("mt_prquad", "POINT", "SP_GiST_prquadtree"),
]


def _key_literal(type_name: str, n: int) -> str:
    """A unique, in-bounds key literal for row ``n`` of a table."""
    if type_name.startswith("VARCHAR"):
        return f"'k{n:06d}'"
    # Points stay inside the quadtree world box (0,0)-(100,100) and are
    # unique for n < 8100, far above any schedule's row count.
    return f"'({n % 90},{n // 90 % 90})'"


class _Shared:
    """Cross-thread accounting for one schedule (all guarded by one lock)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.failures: list[str] = []
        self.events: list[dict[str, Any]] = []
        self.counts: dict[str, int] = {}

    def fail(self, message: str) -> None:
        with self.lock:
            self.failures.append(message)

    def event(self, **fields: Any) -> None:
        with self.lock:
            self.events.append(fields)

    def bump(self, name: str, n: int = 1) -> None:
        with self.lock:
            self.counts[name] = self.counts.get(name, 0) + n


def _with_backoff(fn, shared: _Shared, rng: random.Random, attempts: int = 40):
    """Run ``fn`` retrying ServerOverloadedError with jittered backoff.

    This is the client half of admission control: rejected work backs
    off and retries instead of queueing inside the server.
    """
    for _ in range(attempts):
        try:
            return fn()
        except ServerOverloadedError:
            shared.bump("overload_backoffs")
            time.sleep(rng.uniform(0.001, 0.01))
    raise ServerOverloadedError("backoff budget exhausted")


# ---------------------------------------------------------------------------
# Replicated side
# ---------------------------------------------------------------------------


def _replicated_writer(
    mgr: SessionManager,
    session: Session,
    sid: int,
    statements: int,
    seed: int,
    shared: _Shared,
    acked: dict[str, int],
    aborted: set[str],
) -> None:
    rng = random.Random(seed * 1009 + sid)
    for j in range(statements):
        key = f"w{sid}x{j}"
        row_id = sid * 100000 + j
        try:
            if rng.random() < 0.2:
                # An explicitly rolled-back transaction: its row must
                # never become visible anywhere (dirty-read oracle).
                abort_key = f"ab{sid}x{j}"
                with shared.lock:
                    aborted.add(abort_key)
                _with_backoff(
                    lambda: mgr.execute(session, "BEGIN;"), shared, rng
                )
                mgr.execute(
                    session,
                    f"INSERT INTO data VALUES ('{abort_key}', {row_id});",
                )
                mgr.execute(session, "ROLLBACK;")
                shared.bump("replicated_aborted")
            else:
                _with_backoff(
                    lambda: mgr.execute(
                        session, f"INSERT INTO data VALUES ('{key}', {row_id});"
                    ),
                    shared,
                    rng,
                )
                # Only now — after the statement returned, meaning the
                # commit was quorum-acknowledged — is the row "acked".
                with shared.lock:
                    acked[key] = row_id
                shared.bump("replicated_acked")
        except ReproError as exc:
            # Crash window / failover / quorum loss: the write is in
            # doubt (may or may not survive) — never counted as acked.
            shared.bump("replicated_indoubt")
            shared.event(side="replicated", session=session.name,
                         error=type(exc).__name__, statement=j)
            # A failed block leaves the session aborted; clear it.
            try:
                mgr.execute(session, "ROLLBACK;")
            except ReproError:
                pass


def _replicated_reader(
    mgr: SessionManager,
    session: Session,
    sid: int,
    statements: int,
    seed: int,
    shared: _Shared,
    acked: dict[str, int],
    aborted: set[str],
) -> None:
    rng = random.Random(seed * 1009 + sid)
    for _ in range(statements):
        with shared.lock:
            abort_pool = sorted(aborted)
        try:
            if abort_pool and rng.random() < 0.5:
                # Dirty-read probe: a rolled-back key must never surface.
                key = rng.choice(abort_pool)
                rows = _with_backoff(
                    lambda: mgr.execute(
                        session, f"SELECT * FROM data WHERE key = '{key}';"
                    ),
                    shared,
                    rng,
                )
                if rows:
                    shared.fail(
                        f"dirty read: rolled-back key {key!r} visible: {rows}"
                    )
                shared.bump("dirty_read_probes")
            else:
                # Repeatable-read probe: two reads in one block agree.
                _with_backoff(lambda: mgr.execute(session, "BEGIN;"), shared, rng)
                first = mgr.execute(session, "SELECT count(*) FROM data;")
                time.sleep(rng.uniform(0.0, 0.005))
                second = mgr.execute(session, "SELECT count(*) FROM data;")
                mgr.execute(session, "COMMIT;")
                if first != second:
                    shared.fail(
                        f"non-repeatable read on data: {first} != {second}"
                    )
                shared.bump("si_probes")
        except ReproError as exc:
            shared.bump("replicated_read_errors")
            shared.event(side="replicated", session=session.name,
                         error=type(exc).__name__)
            try:
                mgr.execute(session, "ROLLBACK;")
            except ReproError:
                pass
        time.sleep(rng.uniform(0.0, 0.003))


def _replicated_vacuumer(
    mgr: SessionManager, session: Session, sid: int, statements: int,
    seed: int, shared: _Shared,
) -> None:
    rng = random.Random(seed * 1009 + sid)
    for _ in range(max(2, statements // 4)):
        time.sleep(rng.uniform(0.005, 0.02))
        try:
            _with_backoff(
                lambda: mgr.execute(session, "VACUUM data;"), shared, rng
            )
            shared.bump("vacuums")
        except ReproError as exc:
            shared.bump("vacuum_errors")
            shared.event(side="replicated", session=session.name,
                         error=type(exc).__name__)


def _failover_controller(
    rs: ReplicaSet,
    mgr: SessionManager,
    shared: _Shared,
    done: threading.Event,
    crash_after: float,
) -> None:
    """Crash the primary mid-schedule, tick through failover, keep pumping."""
    time.sleep(crash_after)
    with mgr.engine_mutex:
        old = rs.primary.name
        rs.primary.crash()
    shared.event(side="replicated", action="crash", node=old)
    promoted = False
    while not done.is_set():
        with mgr.engine_mutex:
            rs.tick()
            if not promoted and rs.primary.name != old and not rs.primary.crashed:
                promoted = True
                shared.event(side="replicated", action="failover",
                             node=rs.primary.name)
                shared.bump("failovers")
        time.sleep(0.002)


# ---------------------------------------------------------------------------
# Local side (five opclasses)
# ---------------------------------------------------------------------------


def _local_writer(
    mgr: SessionManager,
    session: Session,
    sid: int,
    statements: int,
    seed: int,
    shared: _Shared,
    tracks: dict[str, dict[str, set[int]]],
) -> None:
    rng = random.Random(seed * 1009 + sid)
    for j in range(statements):
        table, type_name, _ = LOCAL_TABLES[rng.randrange(len(LOCAL_TABLES))]
        track = tracks[table]
        row_id = sid * 100000 + j
        key = _key_literal(type_name, row_id % 8000)
        try:
            roll = rng.random()
            if roll < 0.15:
                # Rolled-back insert: must never be visible (disjoint ids).
                abort_id = sid * 100000 + 50000 + j
                with shared.lock:
                    track["aborted"].add(abort_id)
                _with_backoff(lambda: mgr.execute(session, "BEGIN;"), shared, rng)
                mgr.execute(
                    session,
                    f"INSERT INTO {table} VALUES "
                    f"({_key_literal(type_name, abort_id % 8000)}, {abort_id});",
                )
                mgr.execute(session, "ROLLBACK;")
                shared.bump("local_aborted")
            elif roll < 0.3:
                # Delete one of our own acked rows.
                with shared.lock:
                    mine = [
                        i for i in track["acked"]
                        if i // 100000 == sid and i not in track["deleted"]
                    ]
                if mine:
                    victim = rng.choice(mine)
                    _with_backoff(
                        lambda: mgr.execute(
                            session, f"DELETE FROM {table} WHERE id = {victim};"
                        ),
                        shared,
                        rng,
                    )
                    with shared.lock:
                        track["deleted"].add(victim)
                    shared.bump("local_deleted")
            else:
                _with_backoff(
                    lambda: mgr.execute(
                        session,
                        f"INSERT INTO {table} VALUES ({key}, {row_id});",
                    ),
                    shared,
                    rng,
                )
                with shared.lock:
                    track["acked"].add(row_id)
                shared.bump("local_acked")
        except TxnError as exc:
            shared.bump("local_txn_errors")
            shared.event(side="local", session=session.name,
                         error=type(exc).__name__)
            try:
                mgr.execute(session, "ROLLBACK;")
            except ReproError:
                pass
        except ReproError as exc:
            shared.bump("local_errors")
            shared.event(side="local", session=session.name,
                         error=type(exc).__name__)


def _local_reader(
    mgr: SessionManager,
    session: Session,
    sid: int,
    statements: int,
    seed: int,
    shared: _Shared,
    tracks: dict[str, dict[str, set[int]]],
) -> None:
    rng = random.Random(seed * 1009 + sid)
    for _ in range(statements):
        table, _, _ = LOCAL_TABLES[rng.randrange(len(LOCAL_TABLES))]
        track = tracks[table]
        try:
            if rng.random() < 0.5:
                rows = _with_backoff(
                    lambda: mgr.execute(session, f"SELECT * FROM {table};"),
                    shared,
                    rng,
                )
                with shared.lock:
                    dirty = {r[1] for r in rows} & track["aborted"]
                if dirty:
                    shared.fail(
                        f"dirty read on {table}: rolled-back ids {sorted(dirty)}"
                    )
                shared.bump("dirty_read_probes")
            else:
                _with_backoff(lambda: mgr.execute(session, "BEGIN;"), shared, rng)
                first = {r[1] for r in mgr.execute(session, f"SELECT * FROM {table};")}
                time.sleep(rng.uniform(0.0, 0.004))
                second = {r[1] for r in mgr.execute(session, f"SELECT * FROM {table};")}
                mgr.execute(session, "COMMIT;")
                if first != second:
                    shared.fail(
                        f"non-repeatable read on {table}: "
                        f"{sorted(first ^ second)} changed inside a block"
                    )
                shared.bump("si_probes")
        except ReproError as exc:
            shared.bump("local_read_errors")
            shared.event(side="local", session=session.name,
                         error=type(exc).__name__)
            try:
                mgr.execute(session, "ROLLBACK;")
            except ReproError:
                pass


def _local_vacuumer(
    mgr: SessionManager, session: Session, sid: int, statements: int,
    seed: int, shared: _Shared,
) -> None:
    rng = random.Random(seed * 1009 + sid)
    for _ in range(max(2, statements // 4)):
        table, _, _ = LOCAL_TABLES[rng.randrange(len(LOCAL_TABLES))]
        time.sleep(rng.uniform(0.005, 0.02))
        try:
            _with_backoff(
                lambda: mgr.execute(session, f"VACUUM {table};"), shared, rng
            )
            shared.bump("vacuums")
        except ReproError as exc:
            shared.bump("vacuum_errors")
            shared.event(side="local", session=session.name,
                         error=type(exc).__name__)


def _deadlock_injector(
    session: Session,
    first: str,
    second: str,
    barrier: threading.Barrier,
    rounds: int,
    shared: _Shared,
) -> None:
    """Half of a guaranteed deadlock: opposite-order row updates.

    Both injectors BEGIN, synchronize, each update their *first* row,
    synchronize again, then each reach for the other's row — a 2-cycle
    the wait-for graph must detect, aborting exactly the younger victim
    with a retryable DeadlockError.
    """
    for i in range(rounds):
        try:
            barrier.wait(timeout=10)
        except threading.BrokenBarrierError:
            pass
        try:
            session.execute("BEGIN;")
            session.execute(
                f"UPDATE mt_trie SET key = 'd{i}a' WHERE id = {first};"
            )
            try:
                barrier.wait(timeout=10)
            except threading.BrokenBarrierError:
                pass
            session.execute(
                f"UPDATE mt_trie SET key = 'd{i}b' WHERE id = {second};"
            )
            session.execute("COMMIT;")
            shared.bump("deadlock_survivors")
        except DeadlockError:
            shared.bump("deadlocks")
            session.execute("ROLLBACK;")
        except TxnError as exc:
            shared.bump("deadlock_other_errors")
            shared.event(side="local", session=session.name,
                         error=type(exc).__name__)
            try:
                session.execute("ROLLBACK;")
            except ReproError:
                pass


def _timeout_injector(
    holder: Session,
    victim: Session,
    rounds: int,
    shared: _Shared,
) -> None:
    """Deterministic lock-wait timeouts: a holder parks on a row while a
    victim waits with a tiny lock (then statement) deadline."""
    for i in range(rounds):
        try:
            holder.execute("BEGIN;")
            holder.execute(f"UPDATE mt_suffix SET key = 'h{i}' WHERE id = -10;")
            try:
                victim.execute(
                    "UPDATE mt_suffix SET key = 'v' WHERE id = -10;",
                    lock_timeout=0.05,
                )
                shared.fail("lock_timeout injection did not time out")
            except LockTimeoutError:
                shared.bump("lock_timeouts")
            except DeadlockError:
                shared.bump("deadlocks")
            try:
                victim.execute(
                    "UPDATE mt_suffix SET key = 'v' WHERE id = -10;",
                    statement_timeout=0.05,
                )
                shared.fail("statement_timeout injection did not time out")
            except StatementTimeoutError:
                shared.bump("statement_timeouts")
            except DeadlockError:
                shared.bump("deadlocks")
            holder.execute("COMMIT;")
        except TxnError as exc:
            shared.bump("timeout_injector_errors")
            shared.event(side="local", session=holder.name,
                         error=type(exc).__name__)
            for s in (holder, victim):
                try:
                    s.execute("ROLLBACK;")
                except ReproError:
                    pass


# ---------------------------------------------------------------------------
# Schedule driver
# ---------------------------------------------------------------------------


def run_threaded_schedule(
    seed: int,
    sessions: int = 16,
    statements: int = 10,
    directory: str | None = None,
    failover: bool = True,
) -> dict[str, Any]:
    """Run one seeded threaded schedule; returns its transcript.

    ``sessions`` counts every concurrent session across both sides
    (replicated writers/readers/vacuum + local writers/readers/vacuum +
    the four dedicated deadlock/timeout injectors).
    """
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="chaos-mt-") as tmp:
            return run_threaded_schedule(
                seed, sessions=sessions, statements=statements,
                directory=tmp, failover=failover,
            )

    shared = _Shared()
    transcript: dict[str, Any] = {
        "seed": seed,
        "sessions": sessions,
        "statements": statements,
        "failover": failover,
    }

    settings = SETTINGS.replace(
        worker_threads=8,
        max_queue=96,
        shed_threshold=24,
        statement_timeout=30.0,
        lock_timeout=15.0,
    )

    # -- replicated side setup ------------------------------------------------
    rs = ReplicaSet(directory, kind="trie", replicas=2, quorum=1, fsync=False)
    rdb = ReplicatedDatabase(rs)
    rmgr = SessionManager(rdb, settings=settings)
    # Standby reads race the controller's ticks, so the shed path takes
    # the same engine mutex statements do.
    rmgr.shed_reader = lambda sql: _locked_shed(rmgr, rdb, sql)

    # -- local side setup ------------------------------------------------------
    ldb = Database()
    lmgr = SessionManager(ldb, settings=settings)
    boot = lmgr.connect("bootstrap")
    for table, type_name, opclass in LOCAL_TABLES:
        lmgr.execute(boot, f"CREATE TABLE {table} (key {type_name}, id INT);")
        lmgr.execute(
            boot,
            f"CREATE INDEX {table}_idx ON {table} USING SP_GiST (key {opclass});",
        )
        for rid in (-1, -2, -10):
            lmgr.execute(
                boot,
                f"INSERT INTO {table} VALUES "
                f"({_key_literal(type_name, 7900 - rid)}, {rid});",
            )
    lmgr.disconnect(boot)

    # -- session allocation ----------------------------------------------------
    injectors = 4
    workers = max(6, sessions - injectors)
    n_repl = max(3, workers * 2 // 5)
    n_local = max(3, workers - n_repl)
    acked: dict[str, int] = {}
    rep_aborted: set[str] = set()
    tracks = {
        t: {"acked": set(), "deleted": set(), "aborted": set()}
        for t, _, _ in LOCAL_TABLES
    }

    threads: list[threading.Thread] = []
    sid = 0

    def spawn(target, *args) -> None:
        thread = threading.Thread(target=target, args=args, daemon=True)
        threads.append(thread)

    for i in range(n_repl):
        session = rmgr.connect(f"repl-{i}")
        sid += 1
        role = i % 4
        if role in (0, 1):
            spawn(_replicated_writer, rmgr, session, sid, statements, seed,
                  shared, acked, rep_aborted)
        elif role == 2:
            spawn(_replicated_reader, rmgr, session, sid, statements, seed,
                  shared, acked, rep_aborted)
        else:
            spawn(_replicated_vacuumer, rmgr, session, sid, statements, seed,
                  shared)

    for i in range(n_local):
        session = lmgr.connect(f"local-{i}")
        sid += 1
        role = i % 4
        if role in (0, 1):
            spawn(_local_writer, lmgr, session, sid, statements, seed, shared,
                  tracks)
        elif role == 2:
            spawn(_local_reader, lmgr, session, sid, statements, seed, shared,
                  tracks)
        else:
            spawn(_local_vacuumer, lmgr, session, sid, statements, seed, shared)

    barrier = threading.Barrier(2)
    rounds = max(3, statements // 3)
    dl_a = lmgr.connect("deadlock-a")
    dl_b = lmgr.connect("deadlock-b")
    spawn(_deadlock_injector, dl_a, -1, -2, barrier, rounds, shared)
    spawn(_deadlock_injector, dl_b, -2, -1, barrier, rounds, shared)
    to_holder = lmgr.connect("timeout-holder")
    to_victim = lmgr.connect("timeout-victim")
    spawn(_timeout_injector, to_holder, to_victim, max(2, rounds // 2), shared)

    done = threading.Event()
    controller = None
    if failover:
        controller = threading.Thread(
            target=_failover_controller,
            args=(rs, rmgr, shared, done, 0.05 + statements * 0.004),
            daemon=True,
        )
        controller.start()

    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    done.set()
    if controller is not None:
        controller.join(timeout=10)

    # -- verification ----------------------------------------------------------
    _verify_replicated(rs, rmgr, acked, rep_aborted, shared)
    _verify_local(ldb, lmgr, tracks, shared)
    if failover and shared.counts.get("failovers", 0) < 1:
        shared.fail("schedule requested a failover but none occurred")
    lock_stats = {"replicated": rmgr.locks.stats(), "local": lmgr.locks.stats()}
    for side, stats in lock_stats.items():
        if stats["held"] or stats["waiters"]:
            shared.fail(
                f"{side} lock manager not quiescent after schedule: {stats}"
            )

    rmgr.stop()
    lmgr.stop()

    transcript["stats"] = dict(sorted(shared.counts.items()))
    transcript["lock_stats"] = lock_stats
    transcript["events"] = shared.events[-200:]
    transcript["failures"] = shared.failures
    transcript["ok"] = not shared.failures
    return transcript


def _locked_shed(mgr: SessionManager, rdb: ReplicatedDatabase, sql: str):
    with mgr.engine_mutex:
        return rdb.standby_reader(sql)


def _verify_replicated(
    rs: ReplicaSet,
    mgr: SessionManager,
    acked: dict[str, int],
    aborted: set[str],
    shared: _Shared,
) -> None:
    """Post-schedule: every acked row present, no aborted row anywhere,
    spgist_check clean on the whole set."""
    with mgr.engine_mutex:
        for _ in range(12):
            rs.tick()
    session = mgr.connect("verify")
    try:
        for key, row_id in sorted(acked.items()):
            rows = mgr.execute(session, f"SELECT * FROM data WHERE key = '{key}';")
            if [r for r in rows if r[1] == row_id] == []:
                shared.fail(f"acked commit lost: key {key!r} (id {row_id})")
        for key in sorted(aborted):
            rows = mgr.execute(session, f"SELECT * FROM data WHERE key = '{key}';")
            if rows:
                shared.fail(f"rolled-back key {key!r} visible after schedule")
    finally:
        mgr.disconnect(session)
    with mgr.engine_mutex:
        nodes = [rs.primary] + [
            s.node for s in rs.standbys if not s.node.crashed
        ]
        for node in nodes:
            if node.index is None:
                continue
            report = spgist_check(node.index)
            if not report.ok:
                shared.fail(
                    f"spgist_check failed on {node.name}: {report.describe()}"
                )


def _verify_local(
    db: Database,
    mgr: SessionManager,
    tracks: dict[str, dict[str, set[int]]],
    shared: _Shared,
) -> None:
    session = mgr.connect("verify-local")
    try:
        for table, _, _ in LOCAL_TABLES:
            rows = mgr.execute(session, f"SELECT * FROM {table};")
            visible = {r[1] for r in rows}
            track = tracks[table]
            missing = (track["acked"] - track["deleted"]) - visible
            if missing:
                shared.fail(
                    f"acked commits lost on {table}: ids {sorted(missing)[:10]}"
                )
            ghosts = visible & track["aborted"]
            if ghosts:
                shared.fail(
                    f"rolled-back rows visible on {table}: {sorted(ghosts)[:10]}"
                )
            report = spgist_check(
                db.table(table).indexes[f"{table}_idx"].structure
            )
            if not report.ok:
                shared.fail(
                    f"spgist_check failed on {table}: {report.describe()}"
                )
    finally:
        mgr.disconnect(session)


def run_threaded_campaign(
    schedules: int,
    base_seed: int = 0,
    sessions: int = 16,
    statements: int = 10,
) -> dict[str, Any]:
    """Run ``schedules`` seeded threaded schedules; summary like chaos.py."""
    failed: list[dict[str, Any]] = []
    totals: dict[str, int] = {}
    for i in range(schedules):
        transcript = run_threaded_schedule(
            base_seed + i, sessions=sessions, statements=statements
        )
        for key, value in transcript["stats"].items():
            totals[key] = totals.get(key, 0) + value
        if not transcript["ok"]:
            failed.append(transcript)
    return {
        "schedules": schedules,
        "base_seed": base_seed,
        "sessions": sessions,
        "statements": statements,
        "failed": failed,
        "ok": not failed,
        "totals": totals,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 1 (with transcripts written) on any failure."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--schedules", type=int, default=3)
    parser.add_argument("--sessions", type=int, default=16)
    parser.add_argument("--statements", type=int, default=10)
    parser.add_argument(
        "--transcript", default=None,
        help="write failing transcripts (or the summary) here",
    )
    args = parser.parse_args(argv)

    summary = run_threaded_campaign(
        args.schedules,
        base_seed=args.seed,
        sessions=args.sessions,
        statements=args.statements,
    )
    totals = summary["totals"]
    print(
        f"chaos-mt: {args.schedules} schedule(s), {args.sessions} sessions: "
        f"{totals.get('replicated_acked', 0) + totals.get('local_acked', 0)} "
        f"acked, {totals.get('deadlocks', 0)} deadlocks, "
        f"{totals.get('lock_timeouts', 0)}+{totals.get('statement_timeouts', 0)} "
        f"timeouts, {totals.get('failovers', 0)} failovers, "
        f"{totals.get('shed', 0)} shed reads"
    )
    for transcript in summary["failed"]:
        print(f"  FAILED seed={transcript['seed']}: "
              f"{'; '.join(transcript['failures'][:5])}")
        print(f"  reproduce: python -m repro.resilience.chaos_mt "
              f"--seed {transcript['seed']} --schedules 1 "
              f"--sessions {args.sessions} --statements {args.statements}")
    if args.transcript and (summary["failed"] or args.schedules == 1):
        with open(args.transcript, "w") as fh:
            json.dump(summary, fh, indent=2, default=str)
        print(f"transcript written to {args.transcript}")
    return 0 if summary["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
