"""End-to-end chaos harness for the replication subsystem.

Runs randomized, fully seeded schedules against a live
:class:`~repro.replication.ReplicaSet`: client writes (committed AND
rolled back), routed reads, VACUUM passes, online REPACK steps (bounded
subtree re-clustering replicated as ordinary page images), node crashes
(primary and standby), restarts, and shipping channels that drop, corrupt,
reorder, and duplicate frames — then heals the cluster and checks the invariants that
define correct replication:

1. **Zero acknowledged-commit loss** — every row whose commit was
   quorum-acknowledged is present on the (possibly promoted) primary.
2. **Logical equivalence** — after catch-up, every surviving node's heap
   holds exactly the same rows, and on each node the SP-GiST index agrees
   with its own heap key-for-key (the PR 2 differential-oracle check, run
   per node) while :func:`~repro.resilience.check.spgist_check` reports a
   clean structure.
3. **Bounded failover** — every automatic failover completed within
   ``heartbeat_timeout + 1`` ticks of the primary's crash.
4. **Snapshot isolation across failover** — a row written by a rolled-back
   transaction is never visible anywhere, ever: not to a routed read
   mid-schedule, not on any node after healing, not after a VACUUM, and
   not on a standby promoted mid-stream (its clog replicates through the
   meta page and the commit records' xids).

The failure model matches the write path's guarantee: with ``quorum=1``
acknowledged commits survive any single-node loss, so schedules keep at
most one node down at a time (the documented failure bound; see DESIGN.md
§9). Everything — fault rates, event order, crash points, keys — derives
from one integer seed, so any red run reproduces exactly from the seed the
harness prints.

CLI::

    PYTHONPATH=src python -m repro.resilience.chaos --schedules 25 --seed 0
    PYTHONPATH=src python -m repro.resilience.chaos --seed 1234 --schedules 1 \\
        --transcript chaos-transcript.json   # replay one seed, keep evidence
"""

from __future__ import annotations

import json
import random
import tempfile
from typing import Any

from repro.replication import ReplicaSet
from repro.resilience.check import spgist_check
from repro.resilience.faults import ChannelFaultPolicy

#: Schema kinds a schedule may draw (one string, one spatial — exercises
#: both predicate families through replication).
CHAOS_KINDS = ("trie", "pquad")

#: Differential-oracle probes per node during final verification; keys are
#: sampled beyond this count to bound schedule cost.
MAX_PROBES = 30


def _make_key(kind: str, rng: random.Random, counter: int) -> Any:
    if kind == "trie":
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        word = "".join(rng.choice(alphabet) for _ in range(rng.randint(3, 8)))
        return f"{word}{counter}"
    from repro.geometry.point import Point

    # The counter in the low digits keeps every generated point distinct.
    return Point(
        round(rng.uniform(0.0, 100.0), 3) + counter * 1e-6,
        round(rng.uniform(0.0, 100.0), 3),
    )


def run_schedule(
    seed: int,
    steps: int = 32,
    directory: str | None = None,
) -> dict[str, Any]:
    """Run one seeded chaos schedule; returns its transcript.

    The transcript dict carries the drawn configuration, the event list,
    final statistics, and ``ok``/``failures`` — it is what the CI job
    uploads when a schedule goes red.
    """
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
            return run_schedule(seed, steps=steps, directory=tmp)

    rng = random.Random(seed)
    kind = rng.choice(CHAOS_KINDS)
    replicas = rng.randint(2, 3)
    heartbeat_timeout = rng.randint(2, 4)
    max_lag = rng.randint(1, 3)
    policies = [
        ChannelFaultPolicy(
            seed=rng.randrange(2**31),
            drop_rate=round(rng.uniform(0.0, 0.25), 3),
            corrupt_rate=round(rng.uniform(0.0, 0.15), 3),
            reorder_rate=round(rng.uniform(0.0, 0.25), 3),
            duplicate_rate=round(rng.uniform(0.0, 0.15), 3),
        )
        for _ in range(replicas)
    ]
    transcript: dict[str, Any] = {
        "seed": seed,
        "kind": kind,
        "replicas": replicas,
        "quorum": 1,
        "heartbeat_timeout": heartbeat_timeout,
        "max_lag": max_lag,
        "channel_policies": [vars(policy) for policy in policies],
        "events": [],
        "failures": [],
    }
    events: list[dict[str, Any]] = transcript["events"]
    failures: list[str] = transcript["failures"]

    rs = ReplicaSet(
        directory,
        kind=kind,
        replicas=replicas,
        quorum=1,
        heartbeat_timeout=heartbeat_timeout,
        max_lag=max_lag,
        fsync=False,  # crashes are simulated by truncation; see DESIGN.md §9
        channel_policies=policies,
    )
    equality = rs.primary.index.methods.equality_operator

    acked: dict[Any, Any] = {}  # key -> id of quorum-acknowledged rows
    #: key -> id of rows written by ROLLED-BACK transactions. The abort
    #: verdict lands in the clog before the commit ships, so these must
    #: never be visible anywhere — acknowledged or not.
    aborted: dict[Any, Any] = {}
    unacked_writes = 0
    down = None  # the failure bound: at most one node down at a time
    primary_crash_tick: int | None = None
    seen_failovers = 0
    counter = 0

    def note_failovers() -> None:
        nonlocal seen_failovers, primary_crash_tick
        while seen_failovers < len(rs.failover_log):
            record = rs.failover_log[seen_failovers]
            seen_failovers += 1
            if primary_crash_tick is not None:
                taken = record["tick"] - primary_crash_tick
                bound = heartbeat_timeout + 1
                if taken > bound:
                    failures.append(
                        f"failover at tick {record['tick']} took {taken} "
                        f"ticks (> bound {bound})"
                    )
                events.append(
                    {"event": "failover", "tick": record["tick"],
                     "elected": record["elected"], "ticks": taken}
                )
                primary_crash_tick = None

    for step in range(steps):
        roll = rng.random()
        if roll < 0.40:  # client write (1-3 rows)
            rows = []
            for _ in range(rng.randint(1, 3)):
                counter += 1
                rows.append((_make_key(kind, rng, counter), counter))
            try:
                seq = rs.client_write(rows)
            except Exception as exc:  # not acknowledged: in-doubt, no claim
                unacked_writes += 1
                events.append(
                    {"event": "write-unacked", "step": step,
                     "error": type(exc).__name__}
                )
            else:
                for key, value in rows:
                    acked[key] = value
                events.append(
                    {"event": "write-acked", "step": step, "seq": seq,
                     "rows": len(rows)}
                )
        elif roll < 0.48:  # transactional write that ROLLS BACK
            rows = []
            for _ in range(rng.randint(1, 3)):
                counter += 1
                rows.append((_make_key(kind, rng, counter), counter))
            # Visible-nowhere applies whether or not the commit was
            # acknowledged: the rollback verdict precedes the commit.
            for key, value in rows:
                aborted[key] = value
            try:
                seq = rs.client_write_aborted(rows)
            except Exception as exc:
                events.append(
                    {"event": "abort-unacked", "step": step,
                     "error": type(exc).__name__}
                )
            else:
                events.append(
                    {"event": "write-aborted", "step": step, "seq": seq,
                     "rows": len(rows)}
                )
        elif roll < 0.65 and (acked or aborted):  # routed read
            probe_aborted = bool(aborted) and (
                not acked or rng.random() < 0.35
            )
            pool = aborted if probe_aborted else acked
            key = rng.choice(list(pool))
            try:
                result = rs.client_read(equality, key)
            except Exception as exc:
                events.append(
                    {"event": "read-failed", "step": step,
                     "error": type(exc).__name__}
                )
            else:
                if probe_aborted:
                    if result:
                        failures.append(
                            f"dirty read: rolled-back key {key!r} visible "
                            f"on {rs.last_served_by}: {result!r}"
                        )
                else:
                    wrong = [row for row in result if row[0] != key]
                    if wrong:
                        failures.append(
                            f"read of {key!r} on {rs.last_served_by} "
                            f"returned non-matching rows {wrong!r}"
                        )
                events.append(
                    {"event": "read", "step": step,
                     "served_by": rs.last_served_by, "rows": len(result),
                     "aborted_probe": probe_aborted}
                )
        elif roll < 0.70:  # VACUUM the primary, replicate the reclamation
            try:
                seq = rs.client_vacuum()
            except Exception as exc:
                events.append(
                    {"event": "vacuum-failed", "step": step,
                     "error": type(exc).__name__}
                )
            else:
                events.append({"event": "vacuum", "step": step, "seq": seq})
        elif roll < 0.78:  # crash one node (respecting the failure bound)
            if down is None:
                victim = (
                    rs.primary
                    if rng.random() < 0.5
                    else rng.choice(rs.nodes[1:])
                )
                if victim is rs.primary:
                    primary_crash_tick = rs.clock
                victim.crash(seed=rng.randrange(2**31))
                down = victim
                events.append(
                    {"event": "crash", "step": step, "node": victim.name,
                     "was_primary": victim is rs.primary}
                )
        elif roll < 0.9:  # restart the down node
            if down is not None:
                if down is rs.primary:
                    primary_crash_tick = None  # recovered before failover
                rs.rejoin(down)
                events.append(
                    {"event": "restart", "step": step, "node": down.name}
                )
                down = None
        elif roll < 0.95:  # online REPACK: one bounded re-clustering step
            try:
                seq = rs.client_repack(max_subtrees=1)
            except Exception as exc:
                events.append(
                    {"event": "repack-failed", "step": step,
                     "error": type(exc).__name__}
                )
            else:
                events.append({"event": "repack", "step": step, "seq": seq})
        else:
            events.append({"event": "tick", "step": step})
        rs.tick()
        note_failovers()

    # -- heal and verify -------------------------------------------------------
    if down is not None:
        if down is rs.primary:
            primary_crash_tick = None
        rs.rejoin(down)
    for _ in range(heartbeat_timeout + 2):
        rs.tick()  # let any in-flight failover finish
    note_failovers()
    if rs.primary.crashed:
        failures.append("no live primary after healing")
    elif not rs.catch_up():
        failures.append("standbys failed to catch up after healing")
    else:
        _verify(rs, acked, aborted, failures)

    transcript["ok"] = not failures
    transcript["stats"] = {
        "acked_rows": len(acked),
        "aborted_rows": len(aborted),
        "unacked_writes": unacked_writes,
        "failovers": len(rs.failover_log),
        "final_commit_seq": rs.primary.commit_seq,
        "clock": rs.clock,
    }
    rs.close()
    return transcript


def _verify(
    rs: ReplicaSet, acked: dict, aborted: dict, failures: list[str]
) -> None:
    """The end-state invariants: no acked loss, equivalence, clean checks."""
    primary_rows = set(rs.primary.rows())
    lost = {
        (key, value)
        for key, value in acked.items()
        if (key, value) not in primary_rows
    }
    if lost:
        failures.append(
            f"{len(lost)} acknowledged row(s) lost, e.g. "
            f"{sorted(lost, key=repr)[:3]!r}"
        )
    for node in rs.nodes:
        dirty = {
            (key, value)
            for key, value in aborted.items()
            if (key, value) in set(node.rows())
        }
        if dirty:
            failures.append(
                f"{len(dirty)} rolled-back row(s) visible on {node.name} "
                f"after healing, e.g. {sorted(dirty, key=repr)[:3]!r}"
            )
    row_sets = {node.name: frozenset(node.rows()) for node in rs.nodes}
    if len(set(row_sets.values())) != 1:
        counts = {name: len(rows) for name, rows in row_sets.items()}
        failures.append(f"nodes are not logically equivalent: {counts}")
    rng = random.Random(0)
    probes = list(acked)
    if len(probes) > MAX_PROBES:
        probes = rng.sample(probes, MAX_PROBES)
    for node in rs.nodes:
        equality = node.index.methods.equality_operator
        assert node.table is not None
        heap_rows = list(node.rows())
        for key in probes:
            via_index = sorted(
                node.search(equality, key), key=repr
            )
            via_heap = sorted(
                (row for row in heap_rows if row[0] == key), key=repr
            )
            if via_index != via_heap:
                failures.append(
                    f"differential mismatch on {node.name} for key {key!r}: "
                    f"index={via_index!r} heap={via_heap!r}"
                )
                break
        report = spgist_check(node.index)
        if not report.ok:
            failures.append(
                f"spgist_check failed on {node.name}: {report.describe()}"
            )


def run_campaign(
    schedules: int, base_seed: int = 0, steps: int = 32
) -> dict[str, Any]:
    """Run ``schedules`` seeded schedules; returns the campaign summary.

    Schedule ``i`` uses seed ``base_seed + i``, so any failure reproduces
    with ``run_schedule(that_seed)`` alone.
    """
    failed: list[dict[str, Any]] = []
    stats = {
        "acked_rows": 0,
        "aborted_rows": 0,
        "failovers": 0,
        "unacked_writes": 0,
    }
    for i in range(schedules):
        transcript = run_schedule(base_seed + i, steps=steps)
        for key in stats:
            stats[key] += transcript["stats"][key]
        if not transcript["ok"]:
            failed.append(transcript)
    return {
        "schedules": schedules,
        "base_seed": base_seed,
        "steps": steps,
        "failed": failed,
        "ok": not failed,
        "totals": stats,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 1 (with transcripts written) on any failure."""
    import argparse
    import sys

    # ``--threaded`` switches to the multi-threaded session-server
    # harness (concurrent writers/readers/VACUUM with deadlock and
    # timeout injection); remaining arguments are forwarded to it.
    forwarded = list(sys.argv[1:] if argv is None else argv)
    if "--threaded" in forwarded:
        from repro.resilience import chaos_mt

        forwarded.remove("--threaded")
        return chaos_mt.main(forwarded)
    # ``--net`` switches to the network-edge harness (fault-tolerant
    # client driver vs. a killing proxy, commit-window primary crashes,
    # and graceful drain/restart under load).
    if "--net" in forwarded:
        from repro.resilience import chaos_net

        forwarded.remove("--net")
        return chaos_net.main(forwarded)
    # ``--cluster`` switches to the sharded-cluster harness (whole-shard
    # kills, 2PC coordinator crashes, splits, routed-read oracles).
    if "--cluster" in forwarded:
        from repro.resilience import chaos_cluster

        forwarded.remove("--cluster")
        return chaos_cluster.main(forwarded)

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; schedule i runs with seed+i (default 0)",
    )
    parser.add_argument(
        "--schedules", type=int, default=25,
        help="number of seeded schedules to run (default 25)",
    )
    parser.add_argument(
        "--steps", type=int, default=32,
        help="events per schedule (default 32)",
    )
    parser.add_argument(
        "--transcript", default=None,
        help="write failing schedule transcripts (or the summary) here",
    )
    args = parser.parse_args(argv)

    summary = run_campaign(args.schedules, base_seed=args.seed, steps=args.steps)
    totals = summary["totals"]
    print(
        f"chaos: {args.schedules} schedule(s) from seed {args.seed}: "
        f"{totals['acked_rows']} acked rows, {totals['aborted_rows']} "
        f"rolled-back rows, {totals['failovers']} failovers, "
        f"{totals['unacked_writes']} in-doubt writes"
    )
    for transcript in summary["failed"]:
        print(
            f"  FAILED seed={transcript['seed']}: "
            f"{'; '.join(transcript['failures'])}"
        )
        print(
            f"  reproduce: python -m repro.resilience.chaos "
            f"--seed {transcript['seed']} --schedules 1"
        )
    if args.transcript and (summary["failed"] or args.schedules == 1):
        payload = summary["failed"] or [
            run_schedule(args.seed, steps=args.steps)
        ]
        with open(args.transcript, "w", encoding="utf-8") as f:
            json.dump(payload if len(payload) > 1 else payload[0], f, indent=2,
                      default=repr)
            f.write("\n")
        print(f"wrote {args.transcript}")
    if summary["failed"]:
        return 1
    print("chaos: all schedules green")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
