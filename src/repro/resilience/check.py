"""``amcheck``-style structural verification of SP-GiST indexes.

:func:`spgist_check` walks an index the way PostgreSQL's ``amcheck``
contrib module walks a B-tree: it re-derives every invariant the insert
path is supposed to maintain and reports violations instead of trusting
the in-memory bookkeeping. Checked invariants:

- every child pointer resolves to a live node (no dangling refs), and no
  node is reachable twice (no cycles / aliased downlinks);
- **predicate containment**: for each stored item, an equality probe for
  its key would descend the exact path the item lives under — i.e.
  ``consistent(node_pred, entry_pred, =key)`` holds at every ancestor and
  ``leaf_consistent(key, =key)`` holds at the leaf;
- **BucketSize/Resolution**: a leaf may exceed ``bucket_size`` only when
  the decomposition legitimately could not go deeper (``Resolution``
  reached, or PickSplit cannot make progress on its items);
- no orphaned nodes: every live slot on every node page is reachable from
  the root, and the store's node counter agrees with the walk;
- ``len(index)`` equals the number of logical items found by the walk
  (distinct ``(key, value)`` pairs for spanning trees such as the PMR
  quadtree).

Corrupt pages encountered during the walk (checksum failures, dangling
refs) become findings rather than exceptions, so one bad page cannot hide
the rest of the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.external import Query
from repro.errors import (
    IndexCorruptionError,
    PageChecksumError,
    StorageError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tree import SPGiSTIndex


@dataclass
class CheckReport:
    """Outcome of one :func:`spgist_check` run."""

    index_name: str
    inner_nodes: int = 0
    leaf_nodes: int = 0
    items_walked: int = 0
    logical_items: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_failed(self) -> None:
        """Raise :class:`IndexCorruptionError` when any invariant failed."""
        if self.problems:
            raise IndexCorruptionError(
                f"spgist_check({self.index_name}) found "
                f"{len(self.problems)} problem(s):\n  "
                + "\n  ".join(self.problems)
            )

    def describe(self) -> str:
        """One-line human summary."""
        status = "OK" if self.ok else f"{len(self.problems)} PROBLEM(S)"
        return (
            f"spgist_check({self.index_name}): {status} — "
            f"{self.inner_nodes} inner, {self.leaf_nodes} leaves, "
            f"{self.logical_items} items"
        )


def spgist_check(
    index: "SPGiSTIndex", strict_buckets: bool = True
) -> CheckReport:
    """Verify the structural invariants of ``index``; never raises.

    ``strict_buckets=False`` skips the overfull-leaf analysis (useful for
    adversarial duplicate-heavy datasets where the split-depth cap can
    legitimately leave an overfull leaf that PickSplit could still divide).
    """
    report = CheckReport(index_name=index.name)
    methods = index.methods
    config = index.config
    store = index.store

    if index.root is None:
        if len(index) != 0:
            report.problems.append(
                f"empty tree but len(index) == {len(index)}"
            )
        return report

    visited: set[Any] = set()
    raw_items = 0
    logical: set[tuple[Any, Any]] = set()
    # Stack frames: (ref, level, ancestors) where ancestors is a tuple of
    # (node_predicate, entry_predicate, level) triples along the path.
    stack: list[tuple[Any, int, tuple]] = [(index.root, 0, ())]
    while stack:
        ref, level, ancestors = stack.pop()
        if ref in visited:
            report.problems.append(
                f"node {ref} reachable via more than one path (cycle or "
                "aliased downlink)"
            )
            continue
        visited.add(ref)
        try:
            node = store.read(ref)
        except PageChecksumError as exc:
            report.problems.append(f"unreadable node {ref}: {exc}")
            continue
        except IndexCorruptionError as exc:
            report.problems.append(f"dangling reference {ref}: {exc}")
            continue
        except StorageError as exc:
            report.problems.append(f"storage failure at {ref}: {exc}")
            continue

        if node.is_leaf:
            report.leaf_nodes += 1
            raw_items += len(node.items)
            for key, value in node.items:
                logical.add((key, value))
                _check_item_path(report, methods, ref, key, level, ancestors)
            if strict_buckets and len(node.items) > config.bucket_size:
                _check_overfull_leaf(
                    report, index, ref, node, level, ancestors
                )
            continue

        report.inner_nodes += 1
        delta = methods.level_delta(node.predicate)
        for entry in node.entries:
            if entry.child is None:
                continue
            stack.append(
                (
                    entry.child,
                    level + delta,
                    ancestors + ((node.predicate, entry.predicate, level),),
                )
            )

    report.items_walked = raw_items
    report.logical_items = (
        len(logical) if methods.spanning else raw_items
    )
    if report.logical_items != len(index):
        report.problems.append(
            f"len(index) == {len(index)} but a full walk found "
            f"{report.logical_items} logical items"
        )
    _check_orphans(report, store, visited)
    return report


def _check_item_path(
    report: CheckReport,
    methods: Any,
    ref: Any,
    key: Any,
    level: int,
    ancestors: tuple,
) -> None:
    """Predicate containment: an equality probe for ``key`` reaches ``ref``."""
    probe = Query(methods.equality_operator, key)
    try:
        if not methods.leaf_consistent(key, probe, level):
            report.problems.append(
                f"leaf {ref}: item {key!r} fails leaf_consistent for its "
                "own equality probe"
            )
            return
        for node_pred, entry_pred, anc_level in ancestors:
            if not methods.consistent(node_pred, entry_pred, probe, anc_level):
                report.problems.append(
                    f"leaf {ref}: item {key!r} is not contained by ancestor "
                    f"entry predicate {entry_pred!r} at level {anc_level}"
                )
                return
    except Exception as exc:  # a broken predicate is itself a finding
        report.problems.append(
            f"leaf {ref}: containment probe for {key!r} raised "
            f"{type(exc).__name__}: {exc}"
        )


def _check_overfull_leaf(
    report: CheckReport,
    index: "SPGiSTIndex",
    ref: Any,
    node: Any,
    level: int,
    ancestors: tuple,
) -> None:
    """An overfull leaf is legal only when splitting genuinely cannot help."""
    config = index.config
    if config.resolution and level >= config.resolution:
        return  # Resolution reached: spilling is the documented behaviour.
    parent_predicate = (
        ancestors[-1][1] if ancestors else index.methods.initial_root_predicate()
    )
    from repro.core.tree import SPGiSTIndex as _Core

    try:
        result = index.methods.picksplit(
            list(node.items), level, parent_predicate
        )
    except Exception as exc:
        report.problems.append(
            f"leaf {ref}: picksplit probe on overfull leaf raised "
            f"{type(exc).__name__}: {exc}"
        )
        return
    if not _Core._is_degenerate_split(result, len(node.items)):
        report.problems.append(
            f"leaf {ref}: {len(node.items)} items exceed "
            f"BucketSize={config.bucket_size} although PickSplit can still "
            "partition them"
        )


def _check_orphans(
    report: CheckReport, store: Any, visited: set
) -> None:
    """Every live slot on every node page must have been reached."""
    from repro.core.node import NodeRef

    live_slots = 0
    for page_id in store.page_ids:
        try:
            payload = store.buffer.fetch(page_id)
        except PageChecksumError as exc:
            report.problems.append(f"unreadable node page {page_id}: {exc}")
            continue
        except StorageError as exc:
            report.problems.append(f"missing node page {page_id}: {exc}")
            continue
        for slot, slotted in enumerate(payload.slots):
            if slotted is None:
                continue
            live_slots += 1
            if NodeRef(page_id, slot) not in visited:
                report.problems.append(
                    f"orphaned node at page {page_id} slot {slot} "
                    "(live but unreachable from the root)"
                )
    if live_slots != len(visited) and not any(
        "orphaned" in p or "unreadable" in p for p in report.problems
    ):
        report.problems.append(
            f"store holds {live_slots} live nodes but the walk reached "
            f"{len(visited)}"
        )
    if store.num_nodes != live_slots:
        report.problems.append(
            f"store.num_nodes == {store.num_nodes} but pages hold "
            f"{live_slots} live nodes"
        )
