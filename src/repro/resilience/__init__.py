"""Storage resilience subsystem: faults, checksums, recovery, verification.

The paper's SP-GiST realization inherits PostgreSQL's storage robustness —
WAL, page checksums, ``amcheck`` — for free. This package supplies the
equivalents for the reproduction's simulated storage stack:

- :mod:`repro.resilience.faults` — seeded, configurable fault injection
  (:class:`FaultInjectingDiskManager`) over any disk manager;
- CRC32 page checksums live at the serialization boundary in
  :mod:`repro.storage.page` / :mod:`repro.storage.disk`;
- the write-ahead log lives in :mod:`repro.storage.wal` and is wired into
  :class:`repro.storage.FileDiskManager` (re-exported here);
- :mod:`repro.resilience.check` — the ``amcheck``-style
  :func:`spgist_check` structural verifier;
- :mod:`repro.resilience.incidents` — the process-wide incident log the
  executor reports graceful degradations to.
"""

from repro.resilience.check import CheckReport, spgist_check
from repro.resilience.faults import (
    ChannelFaultCounters,
    ChannelFaultPolicy,
    FaultCounters,
    FaultInjectingDiskManager,
    FaultPolicy,
    FaultyChannel,
    corrupt_page,
)
from repro.resilience.incidents import INCIDENTS, Incident, IncidentLog
from repro.storage.wal import WALRecord, WALStats, WriteAheadLog

__all__ = [
    "CheckReport",
    "spgist_check",
    "ChannelFaultCounters",
    "ChannelFaultPolicy",
    "FaultyChannel",
    "FaultCounters",
    "FaultInjectingDiskManager",
    "FaultPolicy",
    "corrupt_page",
    "INCIDENTS",
    "Incident",
    "IncidentLog",
    "WALRecord",
    "WALStats",
    "WriteAheadLog",
]
