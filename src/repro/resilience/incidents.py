"""Process-wide log of storage-resilience incidents.

When the executor hits index corruption mid-scan it degrades to a
sequential scan rather than failing the query; each such event is recorded
here so operators (and tests) can see that degradation happened. Follows
the :data:`repro.costmodel.CPU_OPS` pattern: one process-global object, no
plumbing through every layer, single-threaded benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import METRICS

_OBS_INCIDENTS = METRICS.counter(
    "incidents_total",
    "Resilience incidents recorded (degradations, quarantines)",
    labels=("kind",),
)


@dataclass(frozen=True)
class Incident:
    """One recorded resilience event."""

    kind: str  # e.g. "index-scan-degraded"
    subject: str  # index or table name
    error_type: str  # exception class name
    detail: str = ""


@dataclass
class IncidentLog:
    """An append-only, resettable list of :class:`Incident` records."""

    incidents: list[Incident] = field(default_factory=list)

    def record(
        self, kind: str, subject: str, error: BaseException
    ) -> Incident:
        """Append one incident derived from a caught exception."""
        incident = Incident(
            kind=kind,
            subject=subject,
            error_type=type(error).__name__,
            detail=str(error),
        )
        self.incidents.append(incident)
        _OBS_INCIDENTS.labels(kind).inc()
        return incident

    @property
    def count(self) -> int:
        return len(self.incidents)

    def of_kind(self, kind: str) -> list[Incident]:
        """All incidents with the given ``kind``."""
        return [i for i in self.incidents if i.kind == kind]

    def reset(self) -> None:
        """Forget all recorded incidents."""
        self.incidents.clear()


#: The process-wide incident log consulted by tests and reports.
INCIDENTS = IncidentLog()
