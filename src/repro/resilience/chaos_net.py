"""Network-edge chaos: the fault-tolerant driver vs. a hostile wire.

The threaded harness (:mod:`repro.resilience.chaos_mt`) attacks the
engine *under* the wire — locks, MVCC, failover — with well-behaved
in-process sessions. This module attacks the wire itself: real TCP
clients drive :class:`~repro.client.ResilientClient` through a
line-aware **killing proxy** that drops connections at the two nastiest
moments of a request's life:

- **before the request is forwarded** — the statement never executed;
  a blind retry is trivially safe and must succeed;
- **after the response is produced but before it is relayed** — the
  statement *executed* and its ack died on the wire (the executed-
  unacked window). A naive retry double-applies; the driver's
  idempotency keys plus the server's dedup cache must absorb the
  re-send.

On top of the per-message faults, each schedule injects one big event
mid-load, chosen by seed:

- **crash** — the :attr:`~repro.server.bridge.ReplicatedDatabase.commit_fault`
  hook kills the primary *between the local apply and the quorum ack*
  of a commit (the sharpest exactly-once window: the row exists on the
  crashed node, the key is poisoned in-doubt, and the client must
  neither see an ack nor cause a duplicate), followed by failover; or
- **drain** — :meth:`~repro.server.net.SQLServer.drain` gracefully
  stops the server under load, then a *new* server sharing the same
  :class:`~repro.server.manager.DedupCache` takes over on a fresh port
  (exactly-once memory must survive the restart), with the proxy
  re-pointed and the driver re-discovering the endpoint.

The oracle, checked after every schedule:

- **zero lost acked commits** — every write the driver acknowledged is
  present (transactions: every row of the block);
- **zero duplicate applies** — no logical write (acked, failed, or
  in-doubt) appears more than once, ever;
- **transaction atomicity** — a replayed block's rows appear all
  together or not at all;
- ``spgist_check`` is clean on every surviving node.

Determinism caveats are the same as chaos_mt: seeds fix each thread's
workload and the proxy's fault draws; the OS owns the interleaving, and
the invariants must hold under all of them.
"""

from __future__ import annotations

import json
import random
import socket
import tempfile
import threading
import time
from typing import Any

from repro.client import ResilientClient, RetryPolicy
from repro.errors import (
    ReplicationError,
    ReproError,
    RetriesExceededError,
)
from repro.replication import ReplicaSet
from repro.resilience.check import spgist_check
from repro.server import ReplicatedDatabase, SessionManager
from repro.server.manager import DedupCache
from repro.server.net import SQLServer
from repro.settings import SETTINGS


class _Shared:
    """Cross-thread accounting for one schedule (one lock guards it all)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.failures: list[str] = []
        self.events: list[dict[str, Any]] = []
        self.counts: dict[str, int] = {}

    def fail(self, message: str) -> None:
        with self.lock:
            self.failures.append(message)

    def event(self, **fields: Any) -> None:
        with self.lock:
            self.events.append(fields)

    def bump(self, name: str, n: int = 1) -> None:
        with self.lock:
            self.counts[name] = self.counts.get(name, 0) + n


class FlakyProxy:
    """A line-aware TCP proxy that kills connections at request boundaries.

    Relays strictly request-line/response-line (the protocol is one line
    each way), which lets it target the two ambiguity windows precisely:
    ``drop_request`` cuts both sides before the server ever sees the
    line; ``drop_response`` forwards the request, reads the server's
    answer, and cuts the client off without relaying it. The upstream
    address is mutable so a drained-and-restarted server can take over
    behind the same client-facing endpoint.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        rng: random.Random,
        shared: _Shared,
        drop_request: float = 0.04,
        drop_response: float = 0.04,
    ) -> None:
        self._upstream = upstream
        self._rng = rng
        self._rng_mu = threading.Lock()
        self._shared = shared
        self.drop_request = drop_request
        self.drop_response = drop_response
        self._stop = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.address: tuple[str, int] = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="flaky-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    def set_upstream(self, upstream: tuple[str, int]) -> None:
        """Repoint new relay connections at a restarted server's address."""
        self._upstream = upstream

    def _draw(self) -> str | None:
        with self._rng_mu:
            roll = self._rng.random()
        if roll < self.drop_request:
            return "drop_request"
        if roll < self.drop_request + self.drop_response:
            return "drop_response"
        return None

    def _accept_loop(self) -> None:
        while not self._stop:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self._upstream, timeout=1.0)
        except OSError:
            client.close()
            return
        upstream.settimeout(60.0)
        client.settimeout(60.0)
        cfile = client.makefile("rwb")
        ufile = upstream.makefile("rwb")
        try:
            while not self._stop:
                req = cfile.readline()
                if not req:
                    return
                fault = self._draw()
                if fault == "drop_request":
                    # The server never sees this line: the statement
                    # definitely did not execute.
                    self._shared.bump("proxy_dropped_requests")
                    return
                ufile.write(req)
                ufile.flush()
                resp = ufile.readline()
                if not resp:
                    return
                if fault == "drop_response":
                    # The server executed and answered; the client will
                    # never know. The exactly-once window.
                    self._shared.bump("proxy_dropped_responses")
                    return
                cfile.write(resp)
                cfile.flush()
        except OSError:
            return
        finally:
            for sock in (client, upstream):
                try:
                    sock.close()
                except OSError:
                    pass

    def close(self) -> None:
        """Stop accepting and close the listener (relays die with it)."""
        self._stop = True
        try:
            self._listener.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Client workloads
# ---------------------------------------------------------------------------


def _client_worker(
    rc: ResilientClient,
    cid: int,
    statements: int,
    seed: int,
    shared: _Shared,
    acked: dict[str, int],
    acked_pairs: list[str],
    attempted: set[str],
    attempted_pairs: list[str],
) -> None:
    rng = random.Random(seed * 1009 + cid)
    for j in range(statements):
        tag = f"c{cid}x{j}"
        row_id = cid * 100000 + j
        roll = rng.random()
        try:
            if roll < 0.6:
                # Autocommit write: auto-stamped with an idempotency key,
                # so however many times the wire eats the ack, it must
                # apply exactly once.
                with shared.lock:
                    attempted.add(tag)
                rc.execute(f"INSERT INTO data VALUES ('{tag}', {row_id});")
                with shared.lock:
                    acked[tag] = row_id
                shared.bump("acked_writes")
            elif roll < 0.8:
                # A two-row transaction: replayed as a whole on transient
                # failure; commit recovery resolves an eaten COMMIT ack.
                with shared.lock:
                    attempted_pairs.append(tag)
                    attempted.add(tag + "a")
                    attempted.add(tag + "b")

                def block(txn, tag=tag, row_id=row_id):
                    txn.execute(
                        f"INSERT INTO data VALUES ('{tag}a', {row_id});")
                    txn.execute(
                        f"INSERT INTO data VALUES ('{tag}b', {row_id});")
                    return tag

                rc.run_transaction(block)
                with shared.lock:
                    acked_pairs.append(tag)
                shared.bump("acked_txns")
            else:
                rc.execute("SELECT count(*) FROM data;")
                shared.bump("reads")
        except ReplicationError:
            # In-doubt: the commit may or may not survive, but it must
            # never be acked and never duplicated.
            shared.bump("indoubt")
            shared.event(client=cid, statement=j, outcome="indoubt")
        except RetriesExceededError as exc:
            shared.bump("retries_exceeded")
            shared.event(client=cid, statement=j, outcome="retries_exceeded",
                         last=type(exc.last_error).__name__
                         if exc.last_error else None)
        except ReproError as exc:
            shared.bump("other_errors")
            shared.event(client=cid, statement=j,
                         error=type(exc).__name__)


# ---------------------------------------------------------------------------
# Fault controllers
# ---------------------------------------------------------------------------


def _tick_pump(
    rs: ReplicaSet,
    holder: dict[str, Any],
    shared: _Shared,
    done: threading.Event,
) -> None:
    """Keep the replica set's clock moving so failover can complete."""
    old_primary = rs.primary.name
    promoted = False
    while not done.is_set():
        mgr: SessionManager = holder["mgr"]
        with mgr.engine_mutex:
            rs.tick()
            if (
                not promoted
                and rs.primary.name != old_primary
                and not rs.primary.crashed
            ):
                promoted = True
                shared.event(action="failover", node=rs.primary.name)
                shared.bump("failovers")
        time.sleep(0.002)


def _arm_commit_fault(
    rdb: ReplicatedDatabase,
    rs: ReplicaSet,
    shared: _Shared,
    after: float,
) -> None:
    """After a delay, make the *next commit* crash the primary between
    its local apply and its quorum ack — the exactly-once window."""
    time.sleep(after)

    def fault() -> None:
        rdb.commit_fault = None  # fire once
        node = rs.primary
        node.crash()
        shared.event(action="commit_fault_crash", node=node.name)
        shared.bump("commit_fault_crashes")

    rdb.commit_fault = fault


def _drain_and_restart(
    holder: dict[str, Any],
    rdb: ReplicatedDatabase,
    dedup: DedupCache,
    proxy: FlakyProxy,
    settings,
    shared: _Shared,
    after: float,
) -> None:
    """Gracefully drain the server under load, then hand its endpoint to
    a fresh server sharing the same dedup cache."""
    time.sleep(after)
    old_srv: SQLServer = holder["srv"]
    stats = old_srv.drain(timeout=0.5)
    shared.event(action="drain", **stats)
    shared.bump("drains")
    new_mgr = SessionManager(rdb, settings=settings, dedup=dedup)
    new_mgr.shed_reader = lambda sql: _locked_shed(new_mgr, rdb, sql)
    new_srv = SQLServer(new_mgr).start()
    holder["mgr"] = new_mgr
    holder["srv"] = new_srv
    proxy.set_upstream(new_srv.address)
    shared.event(action="restart", port=new_srv.address[1])


def _locked_shed(mgr: SessionManager, rdb: ReplicatedDatabase, sql: str):
    with mgr.engine_mutex:
        return rdb.standby_reader(sql)


# ---------------------------------------------------------------------------
# Schedule driver
# ---------------------------------------------------------------------------


def run_net_schedule(
    seed: int,
    clients: int = 4,
    statements: int = 12,
    directory: str | None = None,
    scenario: str | None = None,
) -> dict[str, Any]:
    """Run one seeded network-edge schedule; returns its transcript.

    ``scenario`` is ``"crash"`` or ``"drain"`` (None picks by seed).
    """
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="chaos-net-") as tmp:
            return run_net_schedule(
                seed, clients=clients, statements=statements,
                directory=tmp, scenario=scenario,
            )
    if scenario is None:
        scenario = "crash" if seed % 2 == 0 else "drain"

    shared = _Shared()
    transcript: dict[str, Any] = {
        "seed": seed,
        "clients": clients,
        "statements": statements,
        "scenario": scenario,
    }

    settings = SETTINGS.replace(
        worker_threads=4,
        max_queue=64,
        shed_threshold=16,
        statement_timeout=30.0,
        lock_timeout=15.0,
        drain_timeout=0.5,
    )

    rs = ReplicaSet(directory, kind="trie", replicas=2, quorum=1, fsync=False)
    rdb = ReplicatedDatabase(rs)
    dedup = DedupCache(settings.dedup_cache_size)
    mgr = SessionManager(rdb, settings=settings, dedup=dedup)
    mgr.shed_reader = lambda sql: _locked_shed(mgr, rdb, sql)
    srv = SQLServer(mgr).start()
    holder: dict[str, Any] = {"mgr": mgr, "srv": srv}

    proxy = FlakyProxy(
        srv.address, random.Random(seed * 7919 + 1), shared
    )
    rc = ResilientClient(
        discover=lambda: [proxy.address],
        policy=RetryPolicy(
            max_retries=40,
            backoff_base=0.002,
            backoff_cap=0.05,
            rng=random.Random(seed * 31 + 7),
        ),
        op_timeout=30.0,
        pool_size=3,
        connect_timeout=1.0,
        acquire_timeout=2.0,
        breaker_failure_threshold=4,
        breaker_reset_timeout=0.05,
    )

    acked: dict[str, int] = {}
    acked_pairs: list[str] = []
    attempted: set[str] = set()
    attempted_pairs: list[str] = []

    threads = [
        threading.Thread(
            target=_client_worker,
            args=(rc, cid, statements, seed, shared, acked, acked_pairs,
                  attempted, attempted_pairs),
            daemon=True,
        )
        for cid in range(clients)
    ]
    done = threading.Event()
    pump = threading.Thread(
        target=_tick_pump, args=(rs, holder, shared, done), daemon=True
    )
    mid = 0.05 + statements * clients * 0.002
    if scenario == "crash":
        controller = threading.Thread(
            target=_arm_commit_fault, args=(rdb, rs, shared, mid), daemon=True
        )
    else:
        controller = threading.Thread(
            target=_drain_and_restart,
            args=(holder, rdb, dedup, proxy, settings, shared, mid),
            daemon=True,
        )

    pump.start()
    controller.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    controller.join(timeout=30)
    done.set()
    pump.join(timeout=10)
    rdb.commit_fault = None

    _verify(rs, holder["mgr"], shared, acked, acked_pairs, attempted,
            attempted_pairs)

    rc.close()
    proxy.close()
    holder["srv"].stop()
    holder["mgr"].stop()

    transcript["stats"] = dict(sorted(shared.counts.items()))
    transcript["dedup"] = dict(dedup.stats)
    transcript["events"] = shared.events[-200:]
    transcript["failures"] = shared.failures
    transcript["ok"] = not shared.failures
    return transcript


def _verify(
    rs: ReplicaSet,
    mgr: SessionManager,
    shared: _Shared,
    acked: dict[str, int],
    acked_pairs: list[str],
    attempted: set[str],
    attempted_pairs: list[str],
) -> None:
    """The exactly-once oracle: acked present once, nothing present twice,
    transactions atomic, indexes structurally clean."""
    with mgr.engine_mutex:
        for _ in range(12):
            rs.tick()
    session = mgr.connect("verify-net")
    try:
        counts: dict[str, int] = {}
        for tag in sorted(attempted):
            rows = mgr.execute(
                session, f"SELECT * FROM data WHERE key = '{tag}';"
            )
            counts[tag] = len(rows)
            if len(rows) > 1:
                shared.fail(
                    f"duplicate apply: key {tag!r} present {len(rows)} times"
                )
        for tag, row_id in sorted(acked.items()):
            if counts.get(tag, 0) == 0:
                shared.fail(f"acked commit lost: key {tag!r} (id {row_id})")
        for tag in attempted_pairs:
            a, b = counts.get(tag + "a", 0), counts.get(tag + "b", 0)
            if a != b:
                shared.fail(
                    f"non-atomic transaction {tag!r}: "
                    f"{a} copies of a, {b} of b"
                )
        for tag in acked_pairs:
            if counts.get(tag + "a", 0) != 1 or counts.get(tag + "b", 0) != 1:
                shared.fail(f"acked transaction {tag!r} not intact")
    finally:
        mgr.disconnect(session)
    with mgr.engine_mutex:
        nodes = [rs.primary] + [
            s.node for s in rs.standbys if not s.node.crashed
        ]
        for node in nodes:
            if node.index is None or node.crashed:
                continue
            report = spgist_check(node.index)
            if not report.ok:
                shared.fail(
                    f"spgist_check failed on {node.name}: {report.describe()}"
                )


def run_net_campaign(
    schedules: int,
    base_seed: int = 0,
    clients: int = 4,
    statements: int = 12,
) -> dict[str, Any]:
    """Run ``schedules`` seeded network-edge schedules; chaos-style summary."""
    failed: list[dict[str, Any]] = []
    totals: dict[str, int] = {}
    for i in range(schedules):
        transcript = run_net_schedule(
            base_seed + i, clients=clients, statements=statements
        )
        for key, value in transcript["stats"].items():
            totals[key] = totals.get(key, 0) + value
        for key, value in transcript["dedup"].items():
            totals[f"dedup_{key}"] = totals.get(f"dedup_{key}", 0) + value
        if not transcript["ok"]:
            failed.append(transcript)
    return {
        "schedules": schedules,
        "base_seed": base_seed,
        "clients": clients,
        "statements": statements,
        "failed": failed,
        "ok": not failed,
        "totals": totals,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 1 (with transcripts written) on any failure."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--schedules", type=int, default=4)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--statements", type=int, default=12)
    parser.add_argument(
        "--transcript", default=None,
        help="write failing transcripts (or the summary) here",
    )
    args = parser.parse_args(argv)

    summary = run_net_campaign(
        args.schedules,
        base_seed=args.seed,
        clients=args.clients,
        statements=args.statements,
    )
    totals = summary["totals"]
    print(
        f"chaos-net: {args.schedules} schedule(s), {args.clients} clients: "
        f"{totals.get('acked_writes', 0)} acked writes, "
        f"{totals.get('acked_txns', 0)} acked txns, "
        f"{totals.get('proxy_dropped_requests', 0)}+"
        f"{totals.get('proxy_dropped_responses', 0)} wire kills, "
        f"{totals.get('dedup_hits', 0)} dedup hits, "
        f"{totals.get('commit_fault_crashes', 0)} commit-window crashes, "
        f"{totals.get('drains', 0)} drains, "
        f"{totals.get('indoubt', 0)} in-doubt"
    )
    for transcript in summary["failed"]:
        print(f"  FAILED seed={transcript['seed']}: "
              f"{'; '.join(transcript['failures'][:5])}")
        print(f"  reproduce: python -m repro.resilience.chaos_net "
              f"--seed {transcript['seed']} --schedules 1 "
              f"--clients {args.clients} --statements {args.statements}")
    if args.transcript and (summary["failed"] or args.schedules >= 1):
        with open(args.transcript, "w") as fh:
            json.dump(summary, fh, indent=2, default=str)
        print(f"transcript written to {args.transcript}")
    return 0 if summary["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
