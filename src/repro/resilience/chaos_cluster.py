"""Cluster chaos: shard kills, coordinator crashes, and flaky channels.

The single-replica-set harnesses attack one shard's internals; this one
attacks the *distributed* layer above them. Each seeded schedule drives
a :class:`~repro.cluster.Cluster` (space- or hash-partitioned by seed)
through an interleaving of:

- **multi-shard 2PC writes** and single-shard writes (uniquely tagged
  rows, so presence is decidable per transaction);
- **routed reads** — single-shard point lookups, scatter window/prefix
  queries, and k-merged NN queries, each checked against a model;
- **primary kills** (per-shard failover, driven by ticks), **whole-shard
  kills** (every node of a shard at once — the scale-out failure mode
  the ISSUE names) and later restarts with in-doubt resolution;
- **coordinator crashes** at the three instants of the 2PC protocol
  (before any prepare, after all prepares, mid-commit-fan-out), each
  followed by a *new* coordinator recovering from the same log — the
  schedule classifies the transaction by the recovery verdict, exactly
  as a client reconnecting after a coordinator crash would;
- **flaky replication channels** (seeded drop rates) under all of it.

The oracle, checked after every schedule (with all shards restarted,
recovery run to completion, and replication caught up):

- **zero lost acked commits** — every acknowledged transaction's rows
  (single- and multi-shard) are present, each exactly once;
- **zero dirty cross-shard reads** — every transaction, including
  aborted and in-doubt ones, is all-or-nothing across shards once
  recovery has run; aborted 2PC transactions left no row anywhere;
- **routing correctness** — point lookups find their rows on the shard
  the map names; a scatter query equals the model filter; NN distances
  are non-decreasing;
- **``spgist_check`` is clean** on every live node of every shard.

Schedules are fully deterministic: the cluster is driven synchronously,
so one seed is one interleaving, replayable with ``--seed``.
"""

from __future__ import annotations

import json
import random
import tempfile
from typing import Any

from repro.cluster import Cluster, CoordinatorCrash, TwoPhaseCoordinator, TwoPhaseError
from repro.errors import PrimaryUnavailableError, ReplicationError, ReproError
from repro.geometry import Box, euclidean
from repro.geometry.point import Point
from repro.resilience.check import spgist_check
from repro.workloads import random_points, random_words


def _crash_once(events: list, label: str):
    """A chaos hook that raises CoordinatorCrash exactly once."""
    armed = {"on": True}

    def hook() -> None:
        if armed["on"]:
            armed["on"] = False
            events.append({"action": "coordinator_crash", "at": label})
            raise CoordinatorCrash(label)

    return hook


class _Schedule:
    """One seeded run: workload, faults, model, and the final oracle."""

    def __init__(self, seed: int, ops: int, shards: int) -> None:
        self.seed = seed
        self.ops = ops
        self.rng = random.Random(seed * 6151 + 17)
        self.kind = "kdtree" if seed % 2 == 0 else "trie"
        self.shards = shards
        self.events: list[dict[str, Any]] = []
        self.failures: list[str] = []
        self.counts: dict[str, int] = {}
        #: tag -> rows, for every transaction classified as committed.
        self.acked: dict[str, list[tuple]] = {}
        #: tag -> rows, for transactions that must have left nothing.
        self.aborted: dict[str, list[tuple]] = {}
        #: tag -> rows, verdict unknown (quorum lost mid-commit): must be
        #: all-or-nothing but may go either way.
        self.indoubt: dict[str, list[tuple]] = {}
        self._tag = 0
        self._id = 0
        if self.kind == "kdtree":
            self._points = random_points(4000, seed=seed * 13 + 1)
        else:
            self._words = random_words(4000, seed=seed * 13 + 1)

    def bump(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n

    def fail(self, message: str) -> None:
        self.failures.append(message)

    # -- workload material -----------------------------------------------------

    def _next_rows(self, n: int) -> tuple[str, list[tuple]]:
        """``n`` fresh uniquely-tagged rows (unique keys AND unique ids)."""
        self._tag += 1
        tag = f"t{self.seed}x{self._tag}"
        rows = []
        for _ in range(n):
            self._id += 1
            if self.kind == "kdtree":
                key = self._points[self._id % len(self._points)]
            else:
                key = f"{self._words[self._id % len(self._words)]}{self._id:05d}"
            rows.append((key, self._id))
        return tag, rows

    # -- actions ---------------------------------------------------------------

    def act_write(self, cluster: Cluster, multi: bool) -> None:
        tag, rows = self._next_rows(self.rng.randint(4, 8) if multi else 2)
        try:
            cluster.insert(rows)
        except CoordinatorCrash:
            raise  # handled by act_coordinator_crash
        except (TwoPhaseError, PrimaryUnavailableError):
            # A NO vote or a dead shard: cleanly aborted, nothing landed
            # (prepares never apply rows; presumed abort cleans journals).
            self.aborted[tag] = rows
            self.bump("writes_aborted")
            return
        except ReplicationError:
            # Quorum unreachable after local apply: the in-doubt window.
            self.indoubt[tag] = rows
            self.bump("writes_indoubt")
            return
        self.acked[tag] = rows
        self.bump("writes_acked_multi" if multi else "writes_acked_single")

    def act_coordinator_crash(self, cluster: Cluster) -> None:
        """A 2PC write with the coordinator dying at a seeded instant."""
        point = self.rng.choice(
            ["before_prepare", "after_prepares", "mid_commit_fanout"]
        )
        setattr(
            cluster.coordinator, f"crash_{point}",
            _crash_once(self.events, point),
        )
        tag, rows = self._next_rows(self.rng.randint(4, 8))
        crashed = False
        try:
            cluster.insert(rows)
        except CoordinatorCrash:
            crashed = True
        except (TwoPhaseError, PrimaryUnavailableError):
            self.aborted[tag] = rows
            self.bump("writes_aborted")
        finally:
            setattr(cluster.coordinator, f"crash_{point}", None)
        if not crashed:
            if tag not in self.aborted:
                self.acked[tag] = rows  # hook never fired (single-shard route)
            return
        # Coordinator restart: a NEW coordinator over the SAME log decides.
        cluster.coordinator = TwoPhaseCoordinator(
            cluster.coordinator.log, cluster.shards
        )
        outcomes = cluster.recover()
        gid = max(outcomes) if outcomes else None
        verdict = outcomes.get(gid, "aborted") if gid else "aborted"
        if verdict == "committed":
            self.acked[tag] = rows
            self.bump("coordinator_crash_committed")
        else:
            self.aborted[tag] = rows
            self.bump("coordinator_crash_aborted")
        self.events.append(
            {"action": "coordinator_recovery", "at": point, "verdict": verdict}
        )

    def act_kill_primary(self, cluster: Cluster) -> None:
        sid = self.rng.randrange(cluster.shard_map.num_shards)
        rs = cluster.shards[sid].rs
        if rs.primary.crashed or not any(
            not e.node.crashed for e in rs.standbys
        ):
            return
        deposed = rs.primary
        deposed.crash(seed=self.seed)
        self.events.append({"action": "kill_primary", "shard": sid})
        self.bump("primary_kills")
        for _ in range(rs.heartbeat_timeout + 1):
            rs.tick()  # drive the failover to completion
        if rs.primary is not deposed and not rs.primary.crashed:
            # The Patroni move: the deposed primary rejoins as a standby
            # (full resync off the new timeline) so the shard returns to
            # full replica strength instead of bleeding members.
            rs.rejoin(deposed)

    def act_kill_shard(self, cluster: Cluster, dead: set[int]) -> None:
        live = [s for s in cluster.shards if s not in dead]
        if len(live) <= 1:
            return  # keep at least one shard serving
        sid = self.rng.choice(live)
        cluster.kill_shard(sid, seed=self.seed)
        dead.add(sid)
        self.events.append({"action": "kill_shard", "shard": sid})
        self.bump("shard_kills")

    def act_restart_shard(self, cluster: Cluster, dead: set[int]) -> None:
        if not dead:
            return
        sid = self.rng.choice(sorted(dead))
        cluster.restart_shard(sid)
        dead.discard(sid)
        self.events.append({"action": "restart_shard", "shard": sid})
        self.bump("shard_restarts")

    def act_read(self, cluster: Cluster, dead: set[int]) -> None:
        """A routed read checked against the model, skipping dead shards."""
        if not self.acked:
            return
        tag = self.rng.choice(sorted(self.acked))
        row = self.rng.choice(self.acked[tag])
        sid = cluster.shard_map.shard_of_key(row[0])
        if sid in dead or cluster.shards[sid].rs.primary.crashed:
            return
        op = "@" if self.kind == "kdtree" else "="
        try:
            got = cluster.search(op, row[0])
        except ReproError as exc:
            self.fail(f"routed point read raised {type(exc).__name__}: {exc}")
            return
        self.bump("point_reads")
        if row not in got:
            self.fail(
                f"lost acked row {row!r} (txn {tag}): point lookup on "
                f"shard {sid} missed it"
            )

    def act_nn_read(self, cluster: Cluster, dead: set[int]) -> None:
        if dead or any(
            s.rs.primary.crashed for s in cluster.shards.values()
        ):
            return  # NN merges every shard; needs all primaries up
        if self.kind == "kdtree":
            query = Point(self.rng.uniform(0, 100), self.rng.uniform(0, 100))
        else:
            query = "probe"
        try:
            merged = list(cluster.router.nn_merged(query))
        except ReproError as exc:
            self.fail(f"nn read raised {type(exc).__name__}: {exc}")
            return
        self.bump("nn_reads")
        distances = [d for d, _t, _s, _r in merged]
        if distances != sorted(distances):
            self.fail("k-merged NN stream is not distance-ordered")

    def act_scatter_read(self, cluster: Cluster, dead: set[int]) -> None:
        if dead or any(
            s.rs.primary.crashed for s in cluster.shards.values()
        ):
            return
        if self.kind == "kdtree":
            x = self.rng.uniform(0, 60)
            y = self.rng.uniform(0, 60)
            operand: Any = Box(x, y, x + 35, y + 35)
            op = "^"

            def match(key: Any) -> bool:
                return operand.contains_point(key)
        else:
            operand = self.rng.choice("abcdefghij")
            op = "#="

            def match(key: Any) -> bool:
                return str(key).startswith(operand)

        try:
            got = cluster.search(op, operand)
        except ReproError as exc:
            self.fail(f"scatter read raised {type(exc).__name__}: {exc}")
            return
        self.bump("scatter_reads")
        missing = [
            row
            for rows in self.acked.values()
            for row in rows
            if match(row[0]) and row not in got
        ]
        if missing:
            self.fail(
                f"scatter {op} {operand!r} missed {len(missing)} acked "
                f"row(s), e.g. {missing[0]!r}"
            )

    def act_split(self, cluster: Cluster, dead: set[int]) -> None:
        candidates = [
            s for s in cluster.shards
            if s not in dead and not cluster.shards[s].rs.primary.crashed
            and cluster.shards[s].table is not None
            and len(cluster.shards[s].table) >= 8
        ]
        if not candidates:
            return
        sid = self.rng.choice(candidates)
        try:
            target = cluster.split_shard(sid)
        except ReplicationError:
            self.bump("splits_unavailable")  # quorum lost mid-split: allowed
            return
        except ReproError as exc:
            self.fail(f"split of shard {sid} raised {type(exc).__name__}: {exc}")
            return
        self.events.append({"action": "split", "source": sid, "target": target})
        self.bump("splits")

    # -- the run ---------------------------------------------------------------

    def run(self, directory: str) -> dict[str, Any]:
        from repro.resilience.faults import ChannelFaultPolicy

        flaky = [
            ChannelFaultPolicy(seed=self.seed * 31 + 5, drop_rate=0.15),
        ]
        cluster = Cluster(
            directory,
            kind=self.kind,
            shards=self.shards,
            replicas=2,
            quorum=1,
            heartbeat_timeout=2,
            # fsync matters here, unlike the single-set harnesses: a WHOLE
            # shard dying leaves no live standby to recover acked commits
            # from, so the only way "zero lost acked commits" can hold is
            # the primary's WAL being durable at ack time.
            fsync=True,
            pool_pages=64,
            split_threshold=10_000,  # splits happen via act_split, not fill
            channel_policies=flaky,
        )
        dead: set[int] = set()
        try:
            for step in range(self.ops):
                roll = self.rng.random()
                if roll < 0.30:
                    self.act_write(cluster, multi=True)
                elif roll < 0.45:
                    self.act_write(cluster, multi=False)
                elif roll < 0.53:
                    self.act_coordinator_crash(cluster)
                elif roll < 0.63:
                    self.act_read(cluster, dead)
                elif roll < 0.71:
                    self.act_scatter_read(cluster, dead)
                elif roll < 0.76:
                    self.act_nn_read(cluster, dead)
                elif roll < 0.83:
                    self.act_kill_primary(cluster)
                elif roll < 0.89:
                    self.act_kill_shard(cluster, dead)
                elif roll < 0.96:
                    self.act_restart_shard(cluster, dead)
                else:
                    self.act_split(cluster, dead)
                cluster.tick()
            self._final_oracle(cluster, dead)
        finally:
            cluster.close()
        return {
            "seed": self.seed,
            "kind": self.kind,
            "ops": self.ops,
            "stats": dict(sorted(self.counts.items())),
            "events": self.events[-100:],
            "failures": self.failures,
            "ok": not self.failures,
        }

    def _final_oracle(self, cluster: Cluster, dead: set[int]) -> None:
        """Restart everything, finish recovery, then check every invariant."""
        for sid in sorted(dead):
            cluster.restart_shard(sid)
        dead.clear()
        for sid in sorted(cluster.shards):
            rs = cluster.shards[sid].rs
            if rs.primary.crashed:
                for _ in range(rs.heartbeat_timeout + 1):
                    rs.tick()
            for entry in list(rs.standbys):
                if entry.node.crashed:
                    rs.rejoin(entry.node)
        cluster.recover()
        for sid in sorted(cluster.shards):
            cluster.resolve_in_doubt(sid)
        if not cluster.catch_up():
            self.fail("replication did not converge after the schedule")

        rows = cluster.all_rows()
        seen = {}
        for row in rows:
            seen[row] = seen.get(row, 0) + 1
        duplicates = {r: n for r, n in seen.items() if n > 1}
        if duplicates:
            self.fail(f"{len(duplicates)} row(s) applied more than once")

        for tag, txn_rows in sorted(self.acked.items()):
            missing = [r for r in txn_rows if r not in seen]
            if missing:
                self.fail(
                    f"acked txn {tag}: {len(missing)}/{len(txn_rows)} "
                    f"row(s) lost, e.g. {missing[0]!r}"
                )
        for tag, txn_rows in sorted(self.aborted.items()):
            present = [r for r in txn_rows if r in seen]
            if present:
                self.fail(
                    f"aborted txn {tag}: {len(present)} row(s) leaked "
                    f"(dirty cross-shard state), e.g. {present[0]!r}"
                )
        for tag, txn_rows in sorted(self.indoubt.items()):
            present = [r for r in txn_rows if r in seen]
            if present and len(present) != len(txn_rows):
                self.fail(
                    f"in-doubt txn {tag} is torn: {len(present)}/"
                    f"{len(txn_rows)} rows present"
                )

        # Routing correctness on the settled state: every row reachable
        # through the router, on the shard the map names.
        probe = sorted(self.acked.items())[:: max(1, len(self.acked) // 8)]
        op = "@" if self.kind == "kdtree" else "="
        for tag, txn_rows in probe:
            row = txn_rows[0]
            if row not in cluster.search(op, row[0]):
                self.fail(f"settled point lookup missed acked row {row!r}")

        for name, report in sorted(cluster.check().items()):
            if not report.ok:
                self.fail(f"spgist_check failed on {name}: {report.describe()}")


def run_cluster_schedule(
    seed: int, ops: int = 40, shards: int = 3, directory: str | None = None
) -> dict[str, Any]:
    """Run one seeded cluster-chaos schedule; returns its transcript."""
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="chaos-cluster-") as tmp:
            return run_cluster_schedule(seed, ops=ops, shards=shards, directory=tmp)
    return _Schedule(seed, ops, shards).run(directory)


def run_cluster_campaign(
    schedules: int, base_seed: int = 0, ops: int = 40, shards: int = 3
) -> dict[str, Any]:
    """Run ``schedules`` seeded schedules; chaos-style summary."""
    failed: list[dict[str, Any]] = []
    totals: dict[str, int] = {}
    for i in range(schedules):
        transcript = run_cluster_schedule(base_seed + i, ops=ops, shards=shards)
        for key, value in transcript["stats"].items():
            totals[key] = totals.get(key, 0) + value
        if not transcript["ok"]:
            failed.append(transcript)
    return {
        "schedules": schedules,
        "base_seed": base_seed,
        "ops": ops,
        "shards": shards,
        "failed": failed,
        "ok": not failed,
        "totals": totals,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 1 (with transcripts written) on any failure."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--schedules", type=int, default=10)
    parser.add_argument("--ops", type=int, default=40)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument(
        "--transcript", default=None,
        help="write the campaign summary (and failures) here",
    )
    args = parser.parse_args(argv)

    summary = run_cluster_campaign(
        args.schedules, base_seed=args.seed, ops=args.ops, shards=args.shards
    )
    totals = summary["totals"]
    print(
        f"chaos-cluster: {args.schedules} schedule(s), {args.shards} shards: "
        f"{totals.get('writes_acked_multi', 0)} acked 2PC txns, "
        f"{totals.get('writes_acked_single', 0)} single-shard, "
        f"{totals.get('coordinator_crash_committed', 0)}+"
        f"{totals.get('coordinator_crash_aborted', 0)} coordinator crashes, "
        f"{totals.get('shard_kills', 0)} shard kills, "
        f"{totals.get('primary_kills', 0)} primary kills, "
        f"{totals.get('splits', 0)} splits, "
        f"{totals.get('point_reads', 0)}+{totals.get('scatter_reads', 0)}"
        f"+{totals.get('nn_reads', 0)} reads"
    )
    for transcript in summary["failed"]:
        print(f"  FAILED seed={transcript['seed']}: "
              f"{'; '.join(transcript['failures'][:5])}")
        print(f"  reproduce: python -m repro.resilience.chaos_cluster "
              f"--seed {transcript['seed']} --schedules 1 "
              f"--ops {args.ops} --shards {args.shards}")
    if args.transcript:
        with open(args.transcript, "w") as fh:
            json.dump(summary, fh, indent=2, default=str)
        print(f"transcript written to {args.transcript}")
    return 0 if summary["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
