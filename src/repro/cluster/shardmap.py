"""The shard map: which shard owns which region of key space.

Two partitioning schemes, chosen by the indexed type:

- **space partitioning** (points, segments) — the SP-GiST quadrant
  decomposition itself defines the shard boundaries (GP-Tree's adaptive
  grid cells, PAPERS.md): the world box is recursively quartered and
  every shard owns a set of *quadrant prefixes* — strings over the
  digits ``0..3`` (SW, SE, NW, NE) naming a path from the root quadrant.
  The prefixes of all shards are the leaves of one quadtree covering the
  world, so every point routes to exactly one shard and a window query
  routes to exactly the shards whose quadrants it intersects. Segments
  route by midpoint; window queries over segments expand the search box
  by the largest half-extent ever inserted (tracked in the map) so a
  segment whose midpoint lies just outside the window is still found.

- **hash partitioning** (strings) — CRC32 of the key modulo a fixed
  number of virtual buckets, each bucket assigned to a shard. Equality
  routes to one shard; prefix/regex/substring queries scatter.

The map is an ordinary catalog object: :meth:`save` persists it as JSON
in the cluster directory and :meth:`load` revives it on restart, so a
recovering coordinator routes exactly as the crashed one did.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ReproError
from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment

#: Quadrant digit layout: index = (1 if east) + (2 if north).
_QUADS = "0123"


class ShardMapError(ReproError):
    """A routing request the shard map cannot serve."""


def _child_region(region: Box, digit: str) -> Box:
    """The sub-quadrant of ``region`` named by one prefix digit."""
    cx = (region.xmin + region.xmax) / 2.0
    cy = (region.ymin + region.ymax) / 2.0
    if digit == "0":
        return Box(region.xmin, region.ymin, cx, cy)
    if digit == "1":
        return Box(cx, region.ymin, region.xmax, cy)
    if digit == "2":
        return Box(region.xmin, cy, cx, region.ymax)
    if digit == "3":
        return Box(cx, cy, region.xmax, region.ymax)
    raise ShardMapError(f"invalid quadrant digit {digit!r}")


def prefix_region(prefix: str, world: Box) -> Box:
    """The world sub-box a quadrant prefix names ('' = the whole world)."""
    region = world
    for digit in prefix:
        region = _child_region(region, digit)
    return region


def point_digit(point: Point, region: Box) -> str:
    """Which quadrant of ``region`` contains ``point``.

    Points on a split line go east/north — the same half-open convention
    at every level, so routing is a function of the point alone.
    """
    cx = (region.xmin + region.xmax) / 2.0
    cy = (region.ymin + region.ymax) / 2.0
    return _QUADS[(1 if point.x >= cx else 0) + (2 if point.y >= cy else 0)]


def hash_bucket(key: str, buckets: int) -> int:
    """Stable bucket of a string key (CRC32, like hash-partitioned tables)."""
    return zlib.crc32(str(key).encode("utf-8")) % buckets


@dataclass
class ShardMap:
    """Key space → shard id, under either partitioning scheme."""

    scheme: str  # "space" | "hash"
    num_shards: int
    world: Box = field(default_factory=lambda: Box(0.0, 0.0, 100.0, 100.0))
    #: space: quadrant prefix -> shard id; the prefixes are the leaves of
    #: one quadtree partition of the world (complete, non-overlapping).
    prefixes: dict[str, int] = field(default_factory=dict)
    #: hash: virtual bucket -> shard id.
    buckets: list[int] = field(default_factory=list)
    #: Largest half-extent (half bbox diagonal reach per axis) of any
    #: segment ever inserted — the window-query expansion radius.
    max_half_extent: float = 0.0
    #: Bumped by every split; persisted so restarts observe the newest map.
    version: int = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def space(cls, num_shards: int, world: Box) -> "ShardMap":
        """Quarter the world until there are >= num_shards leaf quadrants,
        then deal the leaves round-robin."""
        if num_shards < 1:
            raise ShardMapError("a cluster needs at least one shard")
        leaves = [""]
        while len(leaves) < num_shards:
            leaves.sort(key=lambda p: (len(p), p))
            parent = leaves.pop(0)
            leaves.extend(parent + d for d in _QUADS)
        leaves.sort()
        prefixes = {leaf: i % num_shards for i, leaf in enumerate(leaves)}
        return cls(
            scheme="space", num_shards=num_shards, world=world,
            prefixes=prefixes,
        )

    @classmethod
    def hashed(cls, num_shards: int, buckets: int) -> "ShardMap":
        if num_shards < 1:
            raise ShardMapError("a cluster needs at least one shard")
        if buckets < num_shards:
            raise ShardMapError(
                f"{buckets} buckets cannot cover {num_shards} shards"
            )
        return cls(
            scheme="hash",
            num_shards=num_shards,
            buckets=[b % num_shards for b in range(buckets)],
        )

    # -- routing --------------------------------------------------------------

    def _max_depth(self) -> int:
        return max((len(p) for p in self.prefixes), default=0)

    def shard_of_point(self, point: Point) -> int:
        """Walk the point's quadrant digits to its owning shard."""
        region = self.world
        prefix = ""
        for _ in range(self._max_depth() + 1):
            if prefix in self.prefixes:
                return self.prefixes[prefix]
            digit = point_digit(point, region)
            region = _child_region(region, digit)
            prefix += digit
        raise ShardMapError(
            f"point {point} matched no quadrant prefix (map corrupt?)"
        )

    def shard_of_key(self, key: Any) -> int:
        """The single shard that stores rows keyed by ``key``."""
        if self.scheme == "hash":
            return self.buckets[hash_bucket(key, len(self.buckets))]
        if isinstance(key, LineSegment):
            return self.shard_of_point(key.midpoint())
        if isinstance(key, Point):
            return self.shard_of_point(key)
        raise ShardMapError(
            f"space-partitioned map cannot route key {key!r}"
        )

    def note_key(self, key: Any) -> bool:
        """Track per-key routing metadata; True when the map changed.

        Only segments carry metadata today: the window-expansion radius
        must dominate every stored segment's reach from its midpoint.
        """
        if self.scheme == "space" and isinstance(key, LineSegment):
            reach = max(
                abs(key.a.x - key.b.x), abs(key.a.y - key.b.y)
            ) / 2.0
            if reach > self.max_half_extent:
                self.max_half_extent = reach
                return True
        return False

    def shards_for_box(self, box: Box, expand: bool = False) -> list[int]:
        """Every shard whose region intersects ``box`` (sorted, unique)."""
        if self.scheme != "space":
            return list(range(self.num_shards))
        if expand and self.max_half_extent > 0.0:
            box = Box(
                box.xmin - self.max_half_extent,
                box.ymin - self.max_half_extent,
                box.xmax + self.max_half_extent,
                box.ymax + self.max_half_extent,
            )
        hit = {
            shard
            for prefix, shard in self.prefixes.items()
            if prefix_region(prefix, self.world).intersects(box)
        }
        return sorted(hit)

    def shards_for(self, op: str, operand: Any) -> list[int]:
        """The shards a ``key <op> operand`` query must visit (sorted)."""
        everywhere = list(range(self.num_shards))
        if op == "@@":
            return everywhere  # cross-shard NN is a k-merge over all
        if self.scheme == "hash":
            if op == "=" and isinstance(operand, str):
                return [self.shard_of_key(operand)]
            return everywhere  # prefix/regex/glob/substring scatter
        if op in ("=", "@") and isinstance(operand, (Point, LineSegment)):
            return [self.shard_of_key(operand)]
        if op == "^" and isinstance(operand, Box):
            return self.shards_for_box(operand)
        if op == "&&" and isinstance(operand, Box):
            return self.shards_for_box(operand, expand=True)
        return everywhere

    # -- splitting ------------------------------------------------------------

    def shard_prefixes(self, shard_id: int) -> list[str]:
        """The quadrant prefixes ``shard_id`` owns, sorted."""
        return sorted(p for p, s in self.prefixes.items() if s == shard_id)

    def split(self, source: int, target: int) -> None:
        """Reassign roughly half of ``source``'s key space to ``target``.

        Space scheme: the source's shortest prefix is quartered and two
        of its four child quadrants move (the quadtree deepens exactly
        where the data pressure is — GP-Tree's adaptive cell refinement);
        with several prefixes already, whole prefixes move instead. Hash
        scheme: half of the source's buckets move. The caller migrates
        the rows and persists the map.
        """
        if target == source:
            raise ShardMapError("cannot split a shard into itself")
        if self.scheme == "hash":
            owned = [b for b, s in enumerate(self.buckets) if s == source]
            if len(owned) < 2:
                raise ShardMapError(
                    f"shard {source} owns {len(owned)} bucket(s); cannot split"
                )
            for b in owned[: len(owned) // 2]:
                self.buckets[b] = target
        else:
            owned = self.shard_prefixes(source)
            if not owned:
                raise ShardMapError(f"shard {source} owns no quadrants")
            if len(owned) == 1:
                parent = owned[0]
                del self.prefixes[parent]
                children = [parent + d for d in _QUADS]
                self.prefixes[children[0]] = source
                self.prefixes[children[3]] = source
                self.prefixes[children[1]] = target
                self.prefixes[children[2]] = target
            else:
                movers = sorted(owned, key=lambda p: (len(p), p))
                for prefix in movers[: len(owned) // 2]:
                    self.prefixes[prefix] = target
        self.num_shards = max(self.num_shards, target + 1)
        self.version += 1

    # -- catalog persistence --------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The catalog representation :meth:`save` persists."""
        return {
            "scheme": self.scheme,
            "num_shards": self.num_shards,
            "world": [
                self.world.xmin, self.world.ymin,
                self.world.xmax, self.world.ymax,
            ],
            "prefixes": dict(self.prefixes),
            "buckets": list(self.buckets),
            "max_half_extent": self.max_half_extent,
            "version": self.version,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "ShardMap":
        return cls(
            scheme=payload["scheme"],
            num_shards=int(payload["num_shards"]),
            world=Box(*payload["world"]),
            prefixes={str(k): int(v) for k, v in payload["prefixes"].items()},
            buckets=[int(b) for b in payload["buckets"]],
            max_half_extent=float(payload.get("max_half_extent", 0.0)),
            version=int(payload.get("version", 0)),
        )

    def save(self, path: str) -> None:
        """Durable catalog write: temp file, fsync, atomic rename."""
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "ShardMap":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    # -- invariants (used by tests and spgist_check-style verification) --------

    def covers_world(self, samples: Iterable[Point]) -> bool:
        """Every sample point routes to exactly one in-range shard."""
        if self.scheme == "hash":
            return all(0 <= s < self.num_shards for s in self.buckets)
        return all(
            0 <= self.shard_of_point(p) < self.num_shards for p in samples
        )
