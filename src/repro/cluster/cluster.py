"""The sharded cluster: N replica sets behind one shard map and one router.

A :class:`Cluster` scales the single ReplicaSet deployment *out*: each
shard is a complete :class:`~repro.replication.replicaset.ReplicaSet`
(primary + standbys + failover + quorum acks) owning one region of key
space per the :class:`~repro.cluster.shardmap.ShardMap`. On top ride:

- a :class:`~repro.cluster.router.Router` for reads (single-shard point
  lookups, scatter-gather ranges, k-merged NN);
- a :class:`~repro.cluster.twopc.TwoPhaseCoordinator` for writes that
  straddle shards (single-shard writes bypass it — the common case pays
  nothing for the rare one);
- **shard split**: when a shard's row count crosses
  ``split_threshold``, half of its key space moves to a fresh shard —
  rows are re-routed under the post-split map, bulk-copied to the target
  as acknowledged replica-set writes, MVCC-deleted at the source, and
  the source is VACUUMed and online-REPACKed so its index physically
  shrinks to its remaining region. Every failure mode is accounted for:
  a failure *before* the new map persists rolls the in-memory map,
  shard set, and target directory back exactly (routing never points
  at a partial shard); the flip itself is fenced by a force-written
  *split intent* in ``splits.log``, so a crash *between* the flip and
  the source-side delete — the window in which scatter and NN reads
  would otherwise see the moved rows twice — is healed by
  :meth:`recover` / :meth:`tick`, which re-drive the delete (removing
  only rows whose copy is verifiably present at the target) until the
  source is clean. Splits are synchronous maintenance operations, run
  between client batches like VACUUM.

Durability boundaries match the single-shard story: an acknowledged
single-shard write survived quorum; an acknowledged multi-shard write
has its COMMIT record fsync'd in the coordinator log and will complete
on every shard across any combination of coordinator and shard crashes
(:meth:`recover` / :meth:`resolve_in_doubt`). The 2PC correctness logs
(coordinator log, prepare journals, split intents) are always fsync'd
regardless of the data-path ``fsync`` flag — the documented commit/ack
point must not silently weaken under the default configuration.
"""

from __future__ import annotations

import os
import shutil
from typing import Any, Iterator

from repro.errors import ReplicationError
from repro.obs import METRICS, span
from repro.replication.node import NODE_SCHEMAS
from repro.replication.replicaset import ReplicaSet
from repro.resilience.check import CheckReport, spgist_check
from repro.settings import SETTINGS

from repro.cluster.router import Router
from repro.cluster.shardmap import ShardMap
from repro.cluster.twopc import (
    CoordinatorLog,
    PrepareJournal,
    TwoPhaseCoordinator,
    _JsonLineLog,
)

_SPLITS = METRICS.counter(
    "cluster_shard_splits_total",
    "Shard splits completed",
)
_MOVED_ROWS = METRICS.counter(
    "cluster_rows_moved_total",
    "Rows migrated between shards by splits",
)
_2PC_COMMITS = METRICS.counter(
    "cluster_2pc_commits_total",
    "Multi-shard transactions acknowledged",
)
_2PC_ABORTS = METRICS.counter(
    "cluster_2pc_aborts_total",
    "Multi-shard transactions aborted at prepare",
)

#: kind -> the equality-ish operator used to probe whether a moved row's
#: copy already landed at a split's target shard (see Shard.has_row).
_EQ_OP = {
    "trie": "=",
    "kdtree": "@",
    "pquad": "@",
    "pmr": "=",
}


class SplitLog(_JsonLineLog):
    """Durable intent log for shard splits (``splits.log``).

    An ``intent`` is force-written after the copy phase but before the
    shard map flips, so a death between the flip and the source-side
    delete is recoverable: the pending intent tells :meth:`Cluster.tick`
    and :meth:`Cluster.recover` a shrink is still owed. Without it,
    scatter and NN reads — which visit the source — would return the
    moved rows twice, permanently. ``done`` closes the intent once the
    source is clean. An intent whose map version never persisted marks
    a pre-flip death: the target directory holds only unreachable
    orphan copies and is discarded wholesale.
    """

    def intent(self, source: int, target: int, version: int) -> None:
        """Force-write a split intent: the shrink fence for recovery."""
        self.append({
            "op": "intent", "source": source, "target": target,
            "version": version,
        })

    def done(self, source: int, target: int) -> None:
        """Close an intent: the source holds no moved rows any more."""
        self.append({"op": "done", "source": source, "target": target})

    def pending(self) -> list[dict]:
        """Every intent without a matching ``done``, oldest first."""
        live: dict[tuple[int, int], dict] = {}
        for record in self.records():
            key = (record["source"], record["target"])
            if record["op"] == "intent":
                live[key] = record
            elif record["op"] == "done":
                live.pop(key, None)
        return [live[key] for key in sorted(live)]


class Shard:
    """One shard: a ReplicaSet plus its durable prepare journal.

    Implements the participant API
    :class:`~repro.cluster.twopc.TwoPhaseCoordinator` drives:
    ``prepare`` / ``commit_prepared`` / ``abort_prepared``.
    """

    def __init__(self, shard_id: int, rs: ReplicaSet, journal: PrepareJournal) -> None:
        self.id = shard_id
        self.rs = rs
        self.journal = journal

    # -- 2PC participant API ---------------------------------------------------

    def prepare(self, gid: str, rows: list[tuple]) -> None:
        """Durably park ``rows``; raising is a NO vote.

        A shard with no live primary cannot promise to commit, so the
        vote requires one — the journal append is the durable YES.
        """
        self.rs._require_primary()
        self.journal.prepare(gid, rows)

    def commit_prepared(self, gid: str) -> None:
        """Apply the parked rows as an acknowledged write. Idempotent.

        Recovery may re-drive this after a partial fan-out, possibly on
        a shard that already applied. Idempotence rests on the journal's
        *apply marker*, not on probing row values (a prepared row that
        happens to equal a pre-existing row must never fool recovery
        into dropping the transaction): immediately before the engine
        apply, the journal force-writes the commit sequence the write
        will occupy. On re-entry, the primary's durable ``commit_seq``
        having reached that marker proves the apply committed — the
        crash fell between commit and tombstone — so only the quorum
        re-ack barrier runs. A marker whose seq was never reached means
        the apply never committed; a fresh marker supersedes it and the
        rows apply. Sound because commits form one in-order per-timeline
        sequence (a promoted standby's ``commit_seq`` reaches the marker
        only by applying that very segment) and recovery resolves
        journals before new writes advance the sequence.
        """
        rows = self.journal.pending().get(gid)
        if rows is None:
            return  # tombstoned: applied and acknowledged previously
        self.rs._require_primary()
        applied_at = self.journal.pending_applies().get(gid)
        if applied_at is not None and self.rs.primary.commit_seq >= applied_at:
            # Applied, crashed before the tombstone. Re-ack: an empty
            # commit is a quorum barrier proving the rows replicated.
            self.rs._commit_and_ack()
        elif rows:
            self.journal.applying(gid, self.rs.primary.commit_seq + 1)
            self.rs.client_write(rows)
        self.journal.forget(gid)

    def abort_prepared(self, gid: str) -> None:
        """Tombstone a parked transaction (presumed abort)."""
        self.journal.forget(gid)

    def has_row(self, row: tuple) -> bool:
        """Is an identical row visible on this shard's primary?

        The split resolver's conservative probe: a source-side copy is
        deleted only once the target verifiably holds it.
        """
        op = _EQ_OP[self.rs.kind]
        return row in self.rs.primary.search(op, row[0])

    # -- convenience -----------------------------------------------------------

    @property
    def primary(self):
        return self.rs.primary

    @property
    def table(self):
        return self.rs.primary.table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Shard {self.id} primary={self.rs.primary.name}>"


class Cluster:
    """A space- or hash-partitioned cluster of replica-set shards."""

    def __init__(
        self,
        directory: str,
        kind: str = "kdtree",
        shards: int = 2,
        replicas: int = 1,
        quorum: int = 1,
        heartbeat_timeout: int | None = None,
        max_lag: int | None = None,
        fsync: bool = False,
        pool_pages: int = 64,
        split_threshold: int | None = None,
        channel_policies: Any = None,
    ) -> None:
        if kind not in NODE_SCHEMAS:
            raise ReplicationError(
                f"unknown shard schema kind {kind!r}; "
                f"choose from {sorted(NODE_SCHEMAS)}"
            )
        self.directory = directory
        self.kind = kind
        self.replicas = replicas
        self.quorum = quorum
        self.heartbeat_timeout = heartbeat_timeout
        self.max_lag = max_lag
        self.fsync = fsync
        self.pool_pages = pool_pages
        self.split_threshold = (
            SETTINGS.cluster_split_threshold
            if split_threshold is None
            else split_threshold
        )
        self._channel_policies = channel_policies

        os.makedirs(directory, exist_ok=True)
        map_path = self.map_path
        if os.path.exists(map_path):
            self.shard_map = ShardMap.load(map_path)
        elif kind == "trie":
            self.shard_map = ShardMap.hashed(
                shards, SETTINGS.cluster_hash_buckets
            )
        else:
            from repro.geometry.box import Box

            self.shard_map = ShardMap.space(
                shards, Box(0.0, 0.0, 100.0, 100.0)
            )
        self.shard_map.save(map_path)

        self.shards: dict[int, Shard] = {}
        for sid in range(self.shard_map.num_shards):
            self.shards[sid] = self._open_shard(sid)

        self.router = Router(self.shard_map, self._table_of)
        # The 2PC and split correctness logs are always force-written:
        # the COMMIT record is the documented commit/ack point, a
        # prepare append is a durable YES vote, and a split intent
        # fences the shrink — the data-path ``fsync`` knob must not
        # weaken any of them.
        self.coordinator = TwoPhaseCoordinator(
            CoordinatorLog(
                os.path.join(directory, "coordinator.log"), fsync=True
            ),
            self.shards,
        )
        self.split_log = SplitLog(
            os.path.join(directory, "splits.log"), fsync=True
        )
        self.recover()

    # -- shard lifecycle -------------------------------------------------------

    @property
    def map_path(self) -> str:
        return os.path.join(self.directory, "shardmap.json")

    def _shard_dir(self, sid: int) -> str:
        return os.path.join(self.directory, f"shard-{sid}")

    def _open_shard(self, sid: int) -> Shard:
        path = self._shard_dir(sid)
        os.makedirs(path, exist_ok=True)
        rs = ReplicaSet(
            path,
            kind=self.kind,
            replicas=self.replicas,
            quorum=self.quorum,
            heartbeat_timeout=self.heartbeat_timeout,
            max_lag=self.max_lag,
            fsync=self.fsync,
            pool_pages=self.pool_pages,
            channel_policies=self._channel_policies,
        )
        journal = PrepareJournal(
            os.path.join(path, "prepared.log"), fsync=True
        )
        return Shard(sid, rs, journal)

    def _table_of(self, sid: int):
        shard = self.shards[sid]
        shard.rs._require_primary()
        return shard.table

    # -- writes ----------------------------------------------------------------

    def insert(self, rows: list[tuple]) -> str | int:
        """Insert ``rows`` wherever they belong; atomic across shards.

        Returns the single shard's commit seq when one shard is touched,
        or the 2PC gid when several are. Either way, returning means the
        write is *acknowledged*: it survives any single failure the
        underlying quorum survives.
        """
        groups: dict[int, list[tuple]] = {}
        map_changed = False
        for row in rows:
            key = row[0]
            map_changed |= self.shard_map.note_key(key)
            groups.setdefault(self.shard_map.shard_of_key(key), []).append(row)
        if map_changed:
            self.shard_map.save(self.map_path)
        if len(groups) == 1:
            ((sid, shard_rows),) = groups.items()
            return self.shards[sid].rs.client_write(shard_rows)
        try:
            gid = self.coordinator.write(groups)
        except Exception:
            _2PC_ABORTS.inc()
            raise
        _2PC_COMMITS.inc()
        return gid

    # -- reads -----------------------------------------------------------------

    def search(self, op: str, operand: Any) -> list[tuple]:
        """Routed query, materialized (see :meth:`Router.execute`)."""
        return self.router.execute(op, operand)

    def search_batches(
        self, op: str, operand: Any, batch_size: int | None = None
    ) -> Iterator[list[tuple]]:
        """Routed query as an incremental batch stream."""
        return self.router.execute_batches(op, operand, batch_size=batch_size)

    def nn_search(self, operand: Any, limit: int | None = None) -> list[tuple]:
        """Cross-shard nearest-neighbor search (k-merged, see Router)."""
        return self.router.nn_search(operand, limit=limit)

    def all_rows(self) -> list[tuple]:
        """Every live row across every shard (the chaos oracle's probe)."""
        out: list[tuple] = []
        for sid in sorted(self.shards):
            out.extend(self.shards[sid].primary.rows())
        return out

    # -- split / rebalance -----------------------------------------------------

    def maybe_split(self) -> list[int]:
        """Split every shard whose row count crossed the threshold.

        Returns the source shard ids that split. One pass; a shard that
        is still oversized after halving splits again on the next call.
        """
        split = []
        for sid in sorted(self.shards):
            table = self.shards[sid].table
            if table is not None and len(table) > self.split_threshold:
                self.split_shard(sid)
                split.append(sid)
        return split

    def split_shard(self, source: int) -> int:
        """Move half of ``source``'s key space to a brand-new shard.

        Online in the repack mould: the moved quadrants' rows travel as
        ordinary acknowledged writes, the source's dead versions are
        VACUUMed, and its SP-GiST index is online-REPACKed down to the
        remaining region. Returns the new shard id.

        Failure handling, phase by phase: any failure before the new
        map persists (dead source primary, target copy error) rolls the
        in-memory map, shard set, and target directory back exactly —
        the router never sees a partial shard. The flip is fenced by a
        force-written split intent; once the map persists, the split is
        committed and only the source-side shrink can still be owed — a
        failure there leaves the intent pending and :meth:`tick` /
        :meth:`recover` re-drive the shrink until the source is clean.
        """
        target = self.shard_map.num_shards
        with span("cluster.split", source=source, target=target):
            src = self.shards[source]
            # Liveness before any mutation: a dead source primary must
            # leave the routing state untouched.
            src.rs._require_primary()
            table = src.table
            assert table is not None

            # A crashed earlier split may have left orphan copies in
            # the target directory (pre-flip, hence never reachable):
            # start from a clean slate so the copy is exactly-once.
            tdir = self._shard_dir(target)
            if os.path.isdir(tdir):
                shutil.rmtree(tdir)

            saved = (
                dict(self.shard_map.prefixes),
                list(self.shard_map.buckets),
                self.shard_map.num_shards,
                self.shard_map.version,
            )
            target_shard: Shard | None = None
            try:
                target_shard = self._open_shard(target)
                self.shards[target] = target_shard
                self.coordinator.participants = self.shards
                self.shard_map.split(source, target)

                # Re-route every source row under the post-split map;
                # rows now owned by the target move. (Generic over space
                # and hash schemes — the map answers, the scan just
                # walks the heap.)
                movers: list[tuple[Any, tuple]] = [
                    (tid, row)
                    for tid, row in table.scan()
                    if self.shard_map.shard_of_key(row[0]) == target
                ]

                # 1. Copy: acknowledged quorum writes at the target,
                # batched.
                batch = SETTINGS.batch_size
                moved_rows = [row for _tid, row in movers]
                for start in range(0, len(moved_rows), batch):
                    target_shard.rs.client_write(
                        moved_rows[start:start + batch]
                    )

                # 2. Flip: force-write the split intent (the shrink
                # fence recovery needs if we die before step 3), then
                # persist the new map — the point of no return.
                self.split_log.intent(
                    source, target, self.shard_map.version
                )
                self.shard_map.save(self.map_path)
            except Exception:
                # Pre-flip failure: restore the live routing state
                # exactly and drop the half-written target, so reads
                # and writes keep resolving against the old map.
                (
                    self.shard_map.prefixes,
                    self.shard_map.buckets,
                    self.shard_map.num_shards,
                    self.shard_map.version,
                ) = saved
                self.shards.pop(target, None)
                self.coordinator.participants = self.shards
                if target_shard is not None:
                    target_shard.rs.close()
                shutil.rmtree(tdir, ignore_errors=True)
                raise

            # 3. Shrink: MVCC-delete the moved rows at the source in one
            # replicated transaction, then reclaim + re-cluster. Quorum
            # loss here leaves the intent pending — the split is already
            # routed and the copies acked, so only the shrink is owed
            # and the resolver finishes it.
            try:
                if movers:
                    node = src.primary
                    txn = node.txn.begin()
                    for tid, _row in movers:
                        table.mvcc_delete(tid, txn)
                    node.txn.commit(txn)
                    src.rs._commit_and_ack()
                    src.rs.client_vacuum()
                    src.rs.client_repack()
                self.split_log.done(source, target)
            except ReplicationError:
                pass  # pending intent: tick()/recover() own the shrink
        _SPLITS.inc()
        _MOVED_ROWS.inc(len(movers))
        return target

    def _finish_split(self, source: int, target: int) -> int:
        """Complete an interrupted split's source-side shrink (step 3).

        Deletes every row still physically on ``source`` that the
        current map routes to ``target`` — but only rows whose copy is
        verifiably present at the target, so a row that never finished
        copying is never destroyed. Ends with a quorum barrier proving
        the shrink (this one, or an earlier locally-committed but
        unacked one) replicated. Returns the number of rows removed.
        """
        src = self.shards[source]
        tgt = self.shards[target]
        src.rs._require_primary()
        tgt.rs._require_primary()
        table = src.table
        assert table is not None
        stale = [
            tid
            for tid, row in list(table.scan())
            if self.shard_map.shard_of_key(row[0]) == target
            and tgt.has_row(row)
        ]
        if stale:
            node = src.primary
            txn = node.txn.begin()
            for tid in stale:
                table.mvcc_delete(tid, txn)
            node.txn.commit(txn)
        src.rs._commit_and_ack()
        if stale:
            src.rs.client_vacuum()
            src.rs.client_repack()
        return len(stale)

    def _recover_splits(self) -> dict[str, str]:
        """Resolve every pending split intent (the split resolver).

        An intent whose map version persisted means the split is
        committed and only the source shrink is owed — re-drive it
        (idempotently) and close the intent; a quorum failure leaves it
        pending for the next :meth:`tick`. An intent whose map version
        never persisted marks a pre-flip death: the target directory
        holds only unreachable orphan copies, so it is discarded and
        the intent closed — the retried split starts clean.
        """
        outcomes: dict[str, str] = {}
        for intent in self.split_log.pending():
            source, target = intent["source"], intent["target"]
            key = f"split-{source}->{target}"
            if (
                self.shard_map.version >= intent["version"]
                and target in self.shards
            ):
                try:
                    self._finish_split(source, target)
                except ReplicationError:
                    outcomes[key] = "retry"
                    continue
                outcomes[key] = "finished"
            else:
                tdir = self._shard_dir(target)
                if target not in self.shards and os.path.isdir(tdir):
                    shutil.rmtree(tdir)
                outcomes[key] = "discarded"
            self.split_log.done(source, target)
        return outcomes

    # -- recovery --------------------------------------------------------------

    def recover(self) -> dict[str, str]:
        """Cluster recovery: finish interrupted splits, then finish or
        abort unfinished 2PC transactions."""
        self._recover_splits()
        return self.coordinator.recover()

    def resolve_in_doubt(self, sid: int) -> dict[str, str]:
        """Shard-side recovery: resolve a restarted shard's journal.

        Every journaled gid is checked against the coordinator log:
        present in its commit set → commit_prepared; absent → presumed
        abort. (A shard cannot decide alone; the log is the authority.)
        """
        shard = self.shards[sid]
        committed = self.coordinator.log.committed_gids()
        outcomes: dict[str, str] = {}
        for gid in sorted(shard.journal.pending()):
            if gid in committed:
                try:
                    shard.commit_prepared(gid)
                except ReplicationError:
                    # Applied-but-unacked (quorum unreachable right now):
                    # the journal entry survives, so a later resolve —
                    # e.g. after standbys rejoin — retries idempotently.
                    outcomes[gid] = "retry"
                    continue
                outcomes[gid] = "committed"
            else:
                shard.abort_prepared(gid)
                outcomes[gid] = "aborted"
        return outcomes

    # -- faults (chaos harness entry points) -----------------------------------

    def kill_shard(self, sid: int, seed: int | None = None) -> None:
        """Whole-shard kill: every node of the shard crashes at once."""
        for node in self.shards[sid].rs.nodes:
            if not node.crashed:
                node.crash(seed=seed)

    def restart_shard(self, sid: int) -> None:
        """Bring a fully-killed shard back and resolve its in-doubt txns."""
        rs = self.shards[sid].rs
        if rs.primary.crashed:
            rs.rejoin(rs.primary)
        for entry in list(rs.standbys):
            if entry.node.crashed:
                rs.rejoin(entry.node)
        self.resolve_in_doubt(sid)

    # -- verification ----------------------------------------------------------

    def check(self) -> dict[str, CheckReport]:
        """``spgist_check`` every live node's index, cluster-wide."""
        reports: dict[str, CheckReport] = {}
        for sid in sorted(self.shards):
            for node in self.shards[sid].rs.nodes:
                if node.crashed:
                    continue
                reports[f"shard-{sid}/{node.name}"] = spgist_check(node.index)
        return reports

    # -- control loop ----------------------------------------------------------

    def tick(self) -> None:
        """One control-loop beat: per-shard ticks + the 2PC resolver."""
        for sid in sorted(self.shards):
            self.shards[sid].rs.tick()
        # The background resolver every real 2PC coordinator runs: any
        # transaction still committed-but-not-done (a fan-out leg failed
        # against a then-dead shard) is re-driven; commit_prepared is
        # idempotent, so retrying against a recovered shard is safe.
        if self.coordinator.log.in_flight():
            self.coordinator.recover()
        # Same for splits: a pending intent means a flipped split whose
        # source shrink is still owed (quorum was lost mid-split);
        # re-drive it until the moved rows' source copies are gone.
        if self.split_log.pending():
            self._recover_splits()

    def catch_up(self, max_ticks: int = 200) -> bool:
        """Pump replication until every shard's standbys are current."""
        return all(
            self.shards[sid].rs.catch_up(max_ticks) for sid in sorted(self.shards)
        )

    def close(self) -> None:
        """Close every shard's replica set (flush + release files)."""
        for shard in self.shards.values():
            shard.rs.close()
