"""The sharded cluster: N replica sets behind one shard map and one router.

A :class:`Cluster` scales the single ReplicaSet deployment *out*: each
shard is a complete :class:`~repro.replication.replicaset.ReplicaSet`
(primary + standbys + failover + quorum acks) owning one region of key
space per the :class:`~repro.cluster.shardmap.ShardMap`. On top ride:

- a :class:`~repro.cluster.router.Router` for reads (single-shard point
  lookups, scatter-gather ranges, k-merged NN);
- a :class:`~repro.cluster.twopc.TwoPhaseCoordinator` for writes that
  straddle shards (single-shard writes bypass it — the common case pays
  nothing for the rare one);
- **shard split**: when a shard's row count crosses
  ``split_threshold``, half of its key space moves to a fresh shard —
  rows are re-routed under the post-split map, bulk-copied to the target
  as acknowledged replica-set writes, MVCC-deleted at the source, and
  the source is VACUUMed and online-REPACKed so its index physically
  shrinks to its remaining region. The map persists only after the data
  has moved, so a crash mid-split leaves the old routing intact (the
  copied rows at the target are unreachable orphans, re-moved by the
  retried split). Splits are synchronous maintenance operations, run
  between client batches like VACUUM.

Durability boundaries match the single-shard story: an acknowledged
single-shard write survived quorum; an acknowledged multi-shard write
has its COMMIT record fsync'd in the coordinator log and will complete
on every shard across any combination of coordinator and shard crashes
(:meth:`recover` / :meth:`resolve_in_doubt`).
"""

from __future__ import annotations

import os
from typing import Any, Iterator

from repro.errors import ReplicationError
from repro.obs import METRICS, span
from repro.replication.node import NODE_SCHEMAS
from repro.replication.replicaset import ReplicaSet
from repro.resilience.check import CheckReport, spgist_check
from repro.settings import SETTINGS

from repro.cluster.router import Router
from repro.cluster.shardmap import ShardMap
from repro.cluster.twopc import (
    CoordinatorLog,
    PrepareJournal,
    TwoPhaseCoordinator,
)

_SPLITS = METRICS.counter(
    "cluster_shard_splits_total",
    "Shard splits completed",
)
_MOVED_ROWS = METRICS.counter(
    "cluster_rows_moved_total",
    "Rows migrated between shards by splits",
)
_2PC_COMMITS = METRICS.counter(
    "cluster_2pc_commits_total",
    "Multi-shard transactions acknowledged",
)
_2PC_ABORTS = METRICS.counter(
    "cluster_2pc_aborts_total",
    "Multi-shard transactions aborted at prepare",
)

#: kind -> the equality-ish operator used to probe whether a prepared
#: row already landed (commit_prepared idempotence).
_EQ_OP = {
    "trie": "=",
    "kdtree": "@",
    "pquad": "@",
    "pmr": "=",
}


class Shard:
    """One shard: a ReplicaSet plus its durable prepare journal.

    Implements the participant API
    :class:`~repro.cluster.twopc.TwoPhaseCoordinator` drives:
    ``prepare`` / ``commit_prepared`` / ``abort_prepared``.
    """

    def __init__(self, shard_id: int, rs: ReplicaSet, journal: PrepareJournal) -> None:
        self.id = shard_id
        self.rs = rs
        self.journal = journal

    # -- 2PC participant API ---------------------------------------------------

    def prepare(self, gid: str, rows: list[tuple]) -> None:
        """Durably park ``rows``; raising is a NO vote.

        A shard with no live primary cannot promise to commit, so the
        vote requires one — the journal append is the durable YES.
        """
        self.rs._require_primary()
        self.journal.prepare(gid, rows)

    def commit_prepared(self, gid: str) -> None:
        """Apply the parked rows as an acknowledged write. Idempotent.

        Recovery may re-drive this after a partial fan-out, possibly on a
        shard that already applied: the journal tombstone is the fast
        'already done' check, and a presence probe catches the crash
        window between apply and tombstone. In that window the rows are
        applied but unforgotten — re-applying would double-insert, so the
        probe finds them and only re-runs the quorum barrier.
        """
        rows = self.journal.pending().get(gid)
        if rows is None:
            return  # tombstoned: applied and acknowledged previously
        if rows and self._all_present(rows):
            # Applied, crashed before the tombstone. Re-ack: an empty
            # commit is a quorum barrier proving the rows replicated.
            self.rs._require_primary()
            self.rs._commit_and_ack()
        elif rows:
            self.rs.client_write(rows)
        self.journal.forget(gid)

    def abort_prepared(self, gid: str) -> None:
        """Tombstone a parked transaction (presumed abort)."""
        self.journal.forget(gid)

    def _all_present(self, rows: list[tuple]) -> bool:
        """Did every prepared row already land on the primary?

        Sound because prepared rows apply as ONE engine transaction:
        either all versions exist or none do. (The probe requires txn
        rows to be distinguishable from pre-existing ones — the chaos
        harness tags each gid's rows uniquely, as real systems tag by
        primary key.)
        """
        op = _EQ_OP[self.rs.kind]
        for row in rows:
            matches = list(self.rs.primary.search(op, row[0]))
            if row not in matches:
                return False
        return True

    # -- convenience -----------------------------------------------------------

    @property
    def primary(self):
        return self.rs.primary

    @property
    def table(self):
        return self.rs.primary.table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Shard {self.id} primary={self.rs.primary.name}>"


class Cluster:
    """A space- or hash-partitioned cluster of replica-set shards."""

    def __init__(
        self,
        directory: str,
        kind: str = "kdtree",
        shards: int = 2,
        replicas: int = 1,
        quorum: int = 1,
        heartbeat_timeout: int | None = None,
        max_lag: int | None = None,
        fsync: bool = False,
        pool_pages: int = 64,
        split_threshold: int | None = None,
        channel_policies: Any = None,
    ) -> None:
        if kind not in NODE_SCHEMAS:
            raise ReplicationError(
                f"unknown shard schema kind {kind!r}; "
                f"choose from {sorted(NODE_SCHEMAS)}"
            )
        self.directory = directory
        self.kind = kind
        self.replicas = replicas
        self.quorum = quorum
        self.heartbeat_timeout = heartbeat_timeout
        self.max_lag = max_lag
        self.fsync = fsync
        self.pool_pages = pool_pages
        self.split_threshold = (
            SETTINGS.cluster_split_threshold
            if split_threshold is None
            else split_threshold
        )
        self._channel_policies = channel_policies

        os.makedirs(directory, exist_ok=True)
        map_path = self.map_path
        if os.path.exists(map_path):
            self.shard_map = ShardMap.load(map_path)
        elif kind == "trie":
            self.shard_map = ShardMap.hashed(
                shards, SETTINGS.cluster_hash_buckets
            )
        else:
            from repro.geometry.box import Box

            self.shard_map = ShardMap.space(
                shards, Box(0.0, 0.0, 100.0, 100.0)
            )
        self.shard_map.save(map_path)

        self.shards: dict[int, Shard] = {}
        for sid in range(self.shard_map.num_shards):
            self.shards[sid] = self._open_shard(sid)

        self.router = Router(self.shard_map, self._table_of)
        self.coordinator = TwoPhaseCoordinator(
            CoordinatorLog(
                os.path.join(directory, "coordinator.log"), fsync=fsync
            ),
            self.shards,
        )
        self.recover()

    # -- shard lifecycle -------------------------------------------------------

    @property
    def map_path(self) -> str:
        return os.path.join(self.directory, "shardmap.json")

    def _shard_dir(self, sid: int) -> str:
        return os.path.join(self.directory, f"shard-{sid}")

    def _open_shard(self, sid: int) -> Shard:
        path = self._shard_dir(sid)
        os.makedirs(path, exist_ok=True)
        rs = ReplicaSet(
            path,
            kind=self.kind,
            replicas=self.replicas,
            quorum=self.quorum,
            heartbeat_timeout=self.heartbeat_timeout,
            max_lag=self.max_lag,
            fsync=self.fsync,
            pool_pages=self.pool_pages,
            channel_policies=self._channel_policies,
        )
        journal = PrepareJournal(
            os.path.join(path, "prepared.log"), fsync=self.fsync
        )
        return Shard(sid, rs, journal)

    def _table_of(self, sid: int):
        shard = self.shards[sid]
        shard.rs._require_primary()
        return shard.table

    # -- writes ----------------------------------------------------------------

    def insert(self, rows: list[tuple]) -> str | int:
        """Insert ``rows`` wherever they belong; atomic across shards.

        Returns the single shard's commit seq when one shard is touched,
        or the 2PC gid when several are. Either way, returning means the
        write is *acknowledged*: it survives any single failure the
        underlying quorum survives.
        """
        groups: dict[int, list[tuple]] = {}
        map_changed = False
        for row in rows:
            key = row[0]
            map_changed |= self.shard_map.note_key(key)
            groups.setdefault(self.shard_map.shard_of_key(key), []).append(row)
        if map_changed:
            self.shard_map.save(self.map_path)
        if len(groups) == 1:
            ((sid, shard_rows),) = groups.items()
            return self.shards[sid].rs.client_write(shard_rows)
        try:
            gid = self.coordinator.write(groups)
        except Exception:
            _2PC_ABORTS.inc()
            raise
        _2PC_COMMITS.inc()
        return gid

    # -- reads -----------------------------------------------------------------

    def search(self, op: str, operand: Any) -> list[tuple]:
        """Routed query, materialized (see :meth:`Router.execute`)."""
        return self.router.execute(op, operand)

    def search_batches(
        self, op: str, operand: Any, batch_size: int | None = None
    ) -> Iterator[list[tuple]]:
        """Routed query as an incremental batch stream."""
        return self.router.execute_batches(op, operand, batch_size=batch_size)

    def nn_search(self, operand: Any, limit: int | None = None) -> list[tuple]:
        """Cross-shard nearest-neighbor search (k-merged, see Router)."""
        return self.router.nn_search(operand, limit=limit)

    def all_rows(self) -> list[tuple]:
        """Every live row across every shard (the chaos oracle's probe)."""
        out: list[tuple] = []
        for sid in sorted(self.shards):
            out.extend(self.shards[sid].primary.rows())
        return out

    # -- split / rebalance -----------------------------------------------------

    def maybe_split(self) -> list[int]:
        """Split every shard whose row count crossed the threshold.

        Returns the source shard ids that split. One pass; a shard that
        is still oversized after halving splits again on the next call.
        """
        split = []
        for sid in sorted(self.shards):
            table = self.shards[sid].table
            if table is not None and len(table) > self.split_threshold:
                self.split_shard(sid)
                split.append(sid)
        return split

    def split_shard(self, source: int) -> int:
        """Move half of ``source``'s key space to a brand-new shard.

        Online in the repack mould: the moved quadrants' rows travel as
        ordinary acknowledged writes, the source's dead versions are
        VACUUMed, and its SP-GiST index is online-REPACKed down to the
        remaining region. Returns the new shard id.
        """
        target = self.shard_map.num_shards
        with span("cluster.split", source=source, target=target):
            self.shards[target] = self._open_shard(target)
            self.coordinator.participants = self.shards
            self.shard_map.split(source, target)

            src = self.shards[source]
            src.rs._require_primary()
            table = src.table
            assert table is not None

            # Re-route every source row under the post-split map; rows now
            # owned by the target move. (Generic over space and hash
            # schemes — the map answers, the scan just walks the heap.)
            movers: list[tuple[Any, tuple]] = [
                (tid, row)
                for tid, row in table.scan()
                if self.shard_map.shard_of_key(row[0]) == target
            ]

            # 1. Copy: acknowledged quorum writes at the target, batched.
            batch = SETTINGS.batch_size
            moved_rows = [row for _tid, row in movers]
            for start in range(0, len(moved_rows), batch):
                self.shards[target].rs.client_write(
                    moved_rows[start:start + batch]
                )

            # 2. Flip: persist the new map — the point of no return. A
            # crash before this line leaves the old map routing to the
            # source (target copies are unreachable orphans); after it,
            # both copies exist but only the target's is reachable.
            self.shard_map.save(self.map_path)

            # 3. Shrink: MVCC-delete the moved rows at the source in one
            # replicated transaction, then reclaim + re-cluster.
            if movers:
                node = src.primary
                txn = node.txn.begin()
                for tid, _row in movers:
                    table.mvcc_delete(tid, txn)
                node.txn.commit(txn)
                src.rs._commit_and_ack()
                src.rs.client_vacuum()
                src.rs.client_repack()
        _SPLITS.inc()
        _MOVED_ROWS.inc(len(movers))
        return target

    # -- recovery --------------------------------------------------------------

    def recover(self) -> dict[str, str]:
        """Coordinator-side recovery: finish or abort unfinished 2PC txns."""
        return self.coordinator.recover()

    def resolve_in_doubt(self, sid: int) -> dict[str, str]:
        """Shard-side recovery: resolve a restarted shard's journal.

        Every journaled gid is checked against the coordinator log:
        present in its commit set → commit_prepared; absent → presumed
        abort. (A shard cannot decide alone; the log is the authority.)
        """
        shard = self.shards[sid]
        committed = self.coordinator.log.committed_gids()
        outcomes: dict[str, str] = {}
        for gid in sorted(shard.journal.pending()):
            if gid in committed:
                try:
                    shard.commit_prepared(gid)
                except ReplicationError:
                    # Applied-but-unacked (quorum unreachable right now):
                    # the journal entry survives, so a later resolve —
                    # e.g. after standbys rejoin — retries idempotently.
                    outcomes[gid] = "retry"
                    continue
                outcomes[gid] = "committed"
            else:
                shard.abort_prepared(gid)
                outcomes[gid] = "aborted"
        return outcomes

    # -- faults (chaos harness entry points) -----------------------------------

    def kill_shard(self, sid: int, seed: int | None = None) -> None:
        """Whole-shard kill: every node of the shard crashes at once."""
        for node in self.shards[sid].rs.nodes:
            if not node.crashed:
                node.crash(seed=seed)

    def restart_shard(self, sid: int) -> None:
        """Bring a fully-killed shard back and resolve its in-doubt txns."""
        rs = self.shards[sid].rs
        if rs.primary.crashed:
            rs.rejoin(rs.primary)
        for entry in list(rs.standbys):
            if entry.node.crashed:
                rs.rejoin(entry.node)
        self.resolve_in_doubt(sid)

    # -- verification ----------------------------------------------------------

    def check(self) -> dict[str, CheckReport]:
        """``spgist_check`` every live node's index, cluster-wide."""
        reports: dict[str, CheckReport] = {}
        for sid in sorted(self.shards):
            for node in self.shards[sid].rs.nodes:
                if node.crashed:
                    continue
                reports[f"shard-{sid}/{node.name}"] = spgist_check(node.index)
        return reports

    # -- control loop ----------------------------------------------------------

    def tick(self) -> None:
        """One control-loop beat: per-shard ticks + the 2PC resolver."""
        for sid in sorted(self.shards):
            self.shards[sid].rs.tick()
        # The background resolver every real 2PC coordinator runs: any
        # transaction still committed-but-not-done (a fan-out leg failed
        # against a then-dead shard) is re-driven; commit_prepared is
        # idempotent, so retrying against a recovered shard is safe.
        if self.coordinator.log.in_flight():
            self.coordinator.recover()

    def catch_up(self, max_ticks: int = 200) -> bool:
        """Pump replication until every shard's standbys are current."""
        return all(
            self.shards[sid].rs.catch_up(max_ticks) for sid in sorted(self.shards)
        )

    def close(self) -> None:
        """Close every shard's replica set (flush + release files)."""
        for shard in self.shards.values():
            shard.rs.close()
