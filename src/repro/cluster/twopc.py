"""Two-phase commit over replica-set shards, with presumed abort.

A multi-shard write must be all-or-nothing even though each shard is an
independent :class:`~repro.replication.replicaset.ReplicaSet` with its
own WAL. The classic protocol, layered on the existing transaction and
replication subsystems:

**Phase 1 — prepare.** For every participant shard the coordinator
appends a *prepare record* (the transaction's rows for that shard) to
the shard's durable :class:`PrepareJournal` and fsyncs it. A shard whose
primary is unreachable cannot vote yes; the journal append itself is the
vote. Prepared rows are NOT yet applied to the shard's table — exactly
like PostgreSQL's ``PREPARE TRANSACTION``, the state is parked durably
until the verdict arrives.

**Phase 2 — decide and fan out.** With every vote in, the coordinator
force-writes ``COMMIT`` to its own :class:`CoordinatorLog` — *that fsync
is the commit point and the acknowledgement point*. It then fans
``commit_prepared`` out to the participants (apply the journaled rows as
an ordinary quorum-acknowledged replica-set write, then tombstone the
journal entry) and finally logs ``DONE`` so recovery can forget the
transaction. Any prepare failure before the commit point aborts: the
coordinator tombstones whatever prepares landed and raises — **presumed
abort**, so a participant that finds a journaled transaction with no
``COMMIT`` record anywhere rolls it back without asking.

**Coordinator recovery.** :meth:`TwoPhaseCoordinator.recover` replays the
log: ``COMMIT`` without ``DONE`` → the fan-out is retried (participants
make ``commit_prepared`` idempotent via the journal's *apply marker* —
the commit sequence the apply will occupy, force-written immediately
before the engine apply, so recovery can tell "applied, crashed before
the tombstone" from "never applied" without probing row values);
``begin`` without ``COMMIT`` → presumed abort, the journals are
tombstoned. Crashing at any instant therefore loses nothing
acknowledged and leaks nothing unacknowledged.

The ``crash_*`` attributes are chaos hooks: the harness assigns callables
that raise :class:`CoordinatorCrash` at the three interesting instants
(before any prepare, after all prepares, mid-commit-fan-out) and then
drives recovery on a fresh coordinator over the same log.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable

from repro.errors import ReproError
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment


class TwoPhaseError(ReproError):
    """A distributed transaction could not reach a clean verdict."""


class CoordinatorCrash(ReproError):
    """Raised by chaos hooks to kill the coordinator at a chosen instant."""


# -- row (de)serialization ------------------------------------------------------
#
# Journal and log entries must survive a process restart, so geometry keys
# are encoded structurally; strings/ints pass through as JSON scalars.

def encode_value(value: Any) -> Any:
    """Encode one column value as a JSON-serializable scalar or marker."""
    if isinstance(value, Point):
        return {"pt": [value.x, value.y]}
    if isinstance(value, LineSegment):
        return {"seg": [value.a.x, value.a.y, value.b.x, value.b.y]}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if "pt" in value:
            return Point(*value["pt"])
        if "seg" in value:
            ax, ay, bx, by = value["seg"]
            return LineSegment(Point(ax, ay), Point(bx, by))
    return value


def encode_rows(rows: list[tuple]) -> list[list]:
    """Encode rows for the journal/log (see :func:`encode_value`)."""
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(rows: list[list]) -> list[tuple]:
    """Inverse of :func:`encode_rows`."""
    return [tuple(decode_value(v) for v in row) for row in rows]


class _JsonLineLog:
    """Append-only JSON-line file with fsync'd appends (shared base)."""

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync

    def append(self, record: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def records(self) -> list[dict]:
        if not os.path.exists(self.path):
            return []
        out: list[dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    # A torn final line from a crash mid-append: the record
                    # never became durable, so it never happened (a torn
                    # prepare is a NO vote; a torn COMMIT means presumed
                    # abort). Nothing after it can exist.
                    break
        return out


class PrepareJournal(_JsonLineLog):
    """One shard's durable parking lot for prepared transactions.

    ``prepare`` appends ``{"gid", "rows"}``; ``forget`` appends a
    tombstone. :meth:`pending` folds the log: every gid with a prepare
    but no tombstone is in doubt and must be resolved against the
    coordinator log (presumed abort when absent there).

    ``apply`` records are the idempotence markers: written immediately
    before the engine apply, they name the commit sequence the apply
    will occupy, so recovery re-driving ``commit_prepared`` can decide
    "already committed" by comparing the primary's durable commit
    sequence against the marker instead of probing row values (which
    silently drops a transaction whose rows happen to equal
    pre-existing ones).
    """

    def prepare(self, gid: str, rows: list[tuple]) -> None:
        """Durably park ``rows`` for ``gid`` — the shard's YES vote."""
        self.append({"op": "prepare", "gid": gid, "rows": encode_rows(rows)})

    def applying(self, gid: str, seq: int) -> None:
        """Force-write the commit sequence ``gid``'s apply will occupy.

        Appended immediately before the engine apply; see
        ``Shard.commit_prepared`` for the idempotence argument.
        """
        self.append({"op": "apply", "gid": gid, "seq": seq})

    def forget(self, gid: str) -> None:
        """Tombstone ``gid`` (applied or aborted — resolved either way)."""
        self.append({"op": "forget", "gid": gid})

    def pending(self) -> dict[str, list[tuple]]:
        """gid -> parked rows for every unresolved (in-doubt) txn."""
        live: dict[str, list[tuple]] = {}
        for record in self.records():
            if record["op"] == "prepare":
                live[record["gid"]] = decode_rows(record["rows"])
            elif record["op"] == "forget":
                live.pop(record["gid"], None)
        return live

    def pending_applies(self) -> dict[str, int]:
        """gid -> latest apply-marker seq, for unresolved txns only."""
        live: dict[str, int] = {}
        for record in self.records():
            if record["op"] == "apply":
                live[record["gid"]] = int(record["seq"])
            elif record["op"] == "forget":
                live.pop(record["gid"], None)
        return live

    def compact(self) -> None:
        """Rewrite the journal with only the still-pending entries."""
        pending = self.pending()
        applies = self.pending_applies()
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for gid, rows in pending.items():
                handle.write(json.dumps(
                    {"op": "prepare", "gid": gid, "rows": encode_rows(rows)}
                ) + "\n")
                if gid in applies:
                    handle.write(json.dumps(
                        {"op": "apply", "gid": gid, "seq": applies[gid]}
                    ) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)


class CoordinatorLog(_JsonLineLog):
    """The coordinator's force-written decision log.

    Records: ``begin`` (gid + participant shard ids), ``commit`` (the
    commit point), ``done`` (fan-out finished, forgettable). Absence of
    ``commit`` IS the abort verdict — aborts are never logged (presumed
    abort), which is what makes a crash between begin and commit safe.
    """

    def begin(self, gid: str, shards: list[int]) -> None:
        """Record the participant set before any prepare is sent."""
        self.append({"op": "begin", "gid": gid, "shards": shards})

    def commit(self, gid: str) -> None:
        """Force-write the commit verdict — THE commit/ack point."""
        self.append({"op": "commit", "gid": gid})

    def done(self, gid: str) -> None:
        """Record that every fan-out leg landed; recovery may forget."""
        self.append({"op": "done", "gid": gid})

    def in_flight(self) -> dict[str, dict]:
        """gid -> {"shards": [...], "committed": bool} for unfinished txns."""
        state: dict[str, dict] = {}
        for record in self.records():
            gid = record["gid"]
            if record["op"] == "begin":
                state[gid] = {"shards": record["shards"], "committed": False}
            elif record["op"] == "commit" and gid in state:
                state[gid]["committed"] = True
            elif record["op"] == "done":
                state.pop(gid, None)
        return state

    def committed_gids(self) -> set[str]:
        """Every gid that ever reached the commit point (incl. done ones)."""
        return {
            r["gid"] for r in self.records() if r["op"] == "commit"
        }


class TwoPhaseCoordinator:
    """Runs 2PC across participants that expose the prepared-write API.

    ``participants`` maps shard id → an object with three methods (the
    cluster's :class:`~repro.cluster.cluster.Shard` provides them):

    - ``prepare(gid, rows)`` — durably park the rows; raising = NO vote;
    - ``commit_prepared(gid)`` — apply the parked rows as an acknowledged
      write (idempotent: re-invocation after a partial fan-out must not
      double-apply);
    - ``abort_prepared(gid)`` — tombstone the parked rows.
    """

    def __init__(self, log: CoordinatorLog, participants: dict[int, Any]) -> None:
        self.log = log
        self.participants = participants
        # Continue gid numbering past anything already in the log: a
        # recovered coordinator must never mint a gid a journal or the
        # log already knows under a different transaction.
        self._gid_counter = 0
        for record in log.records():
            gid = record.get("gid", "")
            if gid.startswith("txn-"):
                try:
                    self._gid_counter = max(self._gid_counter, int(gid[4:]))
                except ValueError:
                    pass
        #: Chaos hooks (callables that raise CoordinatorCrash), or None.
        self.crash_before_prepare: Callable[[], None] | None = None
        self.crash_after_prepares: Callable[[], None] | None = None
        self.crash_mid_commit_fanout: Callable[[], None] | None = None

    def next_gid(self) -> str:
        """Mint the next globally-unique transaction id."""
        self._gid_counter += 1
        return f"txn-{self._gid_counter:06d}"

    # -- the protocol ----------------------------------------------------------

    def write(self, rows_by_shard: dict[int, list[tuple]], gid: str | None = None) -> str:
        """Commit ``rows_by_shard`` atomically across its shards.

        Returns the gid once the transaction is *acknowledged* (COMMIT
        force-written); per-shard fan-out failures after that point are
        recovery's problem, not the caller's. Raises
        :class:`TwoPhaseError` when any prepare fails — the transaction
        aborted and no shard will ever show its rows.
        """
        gid = gid or self.next_gid()
        shards = sorted(s for s, rows in rows_by_shard.items() if rows)
        if not shards:
            return gid
        self.log.begin(gid, shards)

        if self.crash_before_prepare is not None:
            self.crash_before_prepare()

        # Phase 1: collect durable YES votes, in shard order (deterministic).
        prepared: list[int] = []
        for sid in shards:
            try:
                self.participants[sid].prepare(gid, rows_by_shard[sid])
            except CoordinatorCrash:
                raise
            except Exception as exc:
                # Presumed abort: no COMMIT record will ever exist, so the
                # already-prepared shards roll back; the tombstones below
                # are an optimization, not a correctness requirement.
                for done_sid in prepared:
                    try:
                        self.participants[done_sid].abort_prepared(gid)
                    except Exception:
                        pass  # recovery will presume abort from the log
                raise TwoPhaseError(
                    f"{gid}: shard {sid} voted no ({exc})"
                ) from exc
            prepared.append(sid)

        if self.crash_after_prepares is not None:
            self.crash_after_prepares()

        # The commit point: one fsync'd record. Everything before it
        # aborts on a crash; everything after it completes on recovery.
        self.log.commit(gid)

        # Phase 2: fan out. A failed leg leaves the gid committed-but-
        # not-done; the remaining legs still run (one slow shard must not
        # delay the others), and recover() retries the failures
        # idempotently until every leg lands.
        incomplete = False
        for i, sid in enumerate(shards):
            if i > 0 and self.crash_mid_commit_fanout is not None:
                self.crash_mid_commit_fanout()
            try:
                self.participants[sid].commit_prepared(gid)
            except CoordinatorCrash:
                raise
            except Exception:
                incomplete = True  # acknowledged; completion owed by recovery
        if not incomplete:
            self.log.done(gid)
        return gid

    # -- recovery --------------------------------------------------------------

    def recover(self) -> dict[str, str]:
        """Resolve every unfinished transaction in the log.

        Returns gid -> "committed" | "aborted" for everything resolved.
        Called on a fresh coordinator over a crashed one's log, and
        harmlessly on a clean log.
        """
        outcomes: dict[str, str] = {}
        for gid, state in sorted(self.log.in_flight().items()):
            if state["committed"]:
                # COMMIT, no DONE: finish the fan-out. commit_prepared is
                # idempotent, so shards that already applied are no-ops.
                complete = True
                for sid in state["shards"]:
                    try:
                        self.participants[sid].commit_prepared(gid)
                    except Exception:
                        complete = False  # shard down: retry next recover()
                if complete:
                    self.log.done(gid)
                outcomes[gid] = "committed"
            else:
                # begin, no COMMIT: presumed abort.
                for sid in state["shards"]:
                    try:
                        self.participants[sid].abort_prepared(gid)
                    except Exception:
                        pass  # the shard will presume abort when it asks
                self.log.done(gid)
                outcomes[gid] = "aborted"
        return outcomes
