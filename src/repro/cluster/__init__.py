"""Sharded scale-out: shard map, distributed router, 2PC, split/rebalance."""

from repro.cluster.cluster import Cluster, Shard, SplitLog
from repro.cluster.router import Router
from repro.cluster.shardmap import ShardMap, ShardMapError
from repro.cluster.twopc import (
    CoordinatorCrash,
    CoordinatorLog,
    PrepareJournal,
    TwoPhaseCoordinator,
    TwoPhaseError,
)

__all__ = [
    "Cluster",
    "Shard",
    "SplitLog",
    "Router",
    "ShardMap",
    "ShardMapError",
    "CoordinatorCrash",
    "CoordinatorLog",
    "PrepareJournal",
    "TwoPhaseCoordinator",
    "TwoPhaseError",
]
