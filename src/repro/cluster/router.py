"""Distributed query routing: single-shard fast path, scatter-gather, NN merge.

The router turns ``key <op> operand`` into per-shard plans against each
shard's *primary* table and streams the results back:

- **point lookups** (``=``/``@`` on a routable key) touch exactly one
  shard — the :class:`~repro.cluster.shardmap.ShardMap` names it and a
  single :func:`~repro.engine.executor.execute_plan_batches` pipeline
  runs there;
- **range/window/regex/containment** queries scatter to every shard the
  map cannot prune away and gather the per-shard batch streams in
  deterministic shard-id order;
- **nearest-neighbour** queries k-merge the shards' *incremental* NN
  cursors: each shard contributes a lazily-advanced stream in
  ``(distance, TID)`` order (the PR 10 tie-break makes that order total
  and stable), and a single ``heapq.merge`` interleaves them, pulling
  from a shard only while it can still beat the global frontier — the
  distributed form of the paper's Hjaltason–Samet ranked traversal.

Reads run on primaries for linearizability (routed standby reads remain
available per-shard through each ReplicaSet); the router is about
*which shards*, not *which replica*.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

from repro.engine.executor import (
    _nn_distance_function,
    execute_plan_batches,
)
from repro.engine.planner import Predicate, plan_query
from repro.obs import METRICS
from repro.replication.node import _INDEX_NAME

from repro.cluster.shardmap import ShardMap

_SINGLE_SHARD = METRICS.counter(
    "cluster_single_shard_queries_total",
    "Queries the shard map routed to exactly one shard",
)
_SCATTER = METRICS.counter(
    "cluster_scatter_queries_total",
    "Queries fanned out to multiple shards",
)
_SHARDS_VISITED = METRICS.counter(
    "cluster_shards_visited_total",
    "Per-shard plan executions the router dispatched",
)


class Router:
    """Plans and executes queries across the cluster's shards.

    ``tables`` is a callable ``shard_id -> Table`` resolving the shard's
    current primary table at execution time (primaries move on failover,
    so the router must never cache them).
    """

    def __init__(self, shard_map: ShardMap, tables: Callable[[int], Any]) -> None:
        self.shard_map = shard_map
        self._table = tables

    # -- routing ---------------------------------------------------------------

    def shards_for(self, op: str, operand: Any) -> list[int]:
        """The shard ids this query must visit (delegates to the map)."""
        return self.shard_map.shards_for(op, operand)

    # -- scatter-gather --------------------------------------------------------

    def execute_batches(
        self, op: str, operand: Any, batch_size: int | None = None
    ) -> Iterator[list[tuple]]:
        """Stream result batches for ``key <op> operand``.

        Single-shard routes run one pipeline; scatter routes concatenate
        the shards' batch streams in shard-id order, so the result is
        deterministic for a fixed cluster state. NN queries go through
        :meth:`nn_merged` instead (a concatenation of per-shard NN
        streams would not be globally distance-ordered).
        """
        if op == "@@":
            yield from _chunk(
                (row for _d, _t, _s, row in self.nn_merged(operand)),
                batch_size,
            )
            return
        shards = self.shards_for(op, operand)
        (_SINGLE_SHARD if len(shards) == 1 else _SCATTER).inc()
        for sid in shards:
            _SHARDS_VISITED.inc()
            table = self._table(sid)
            plan = plan_query(table, Predicate("key", op, operand))
            plan.served_by = f"shard-{sid}"
            yield from execute_plan_batches(plan, batch_size=batch_size)

    def execute(self, op: str, operand: Any) -> list[tuple]:
        """Materialized convenience wrapper over :meth:`execute_batches`."""
        return [
            row for batch in self.execute_batches(op, operand) for row in batch
        ]

    # -- cross-shard nearest neighbour -----------------------------------------

    def _shard_nn_stream(
        self, sid: int, operand: Any
    ) -> Iterator[tuple[float, tuple[int, int], int, tuple]]:
        """One shard's incremental NN cursor as a mergeable stream.

        Yields ``(distance, (page_id, slot), shard_id, row)`` in strictly
        increasing ``(distance, TID)`` order — the per-shard total order
        the core NN queue now guarantees — advancing the underlying
        Hjaltason–Samet cursor only when the merge pulls.
        """
        table = self._table(sid)
        index = table.indexes[_INDEX_NAME]
        position = table.column_index("key")
        distance = _nn_distance_function(table.columns[position].type_name)
        snapshot = table.current_snapshot()
        for tid in index.nn_scan(operand):
            row = table.fetch(tid, snapshot)
            if row is None:
                continue  # not visible under this shard's snapshot
            yield (
                distance(row[position], operand),
                (tid.page_id, tid.slot),
                sid,
                row,
            )

    def nn_merged(
        self, operand: Any
    ) -> Iterator[tuple[float, tuple[int, int], int, tuple]]:
        """All shards' NN streams, k-merged into one global ranking.

        ``heapq.merge`` holds one head per shard and always emits the
        globally nearest, so a ``LIMIT k`` consumer advances each shard's
        cursor only as far as that shard stays competitive. Ties are
        total: equal distances order by TID, then shard id — never by
        row payload, so heterogeneous rows never get compared.
        """
        _SCATTER.inc()
        streams = []
        for sid in range(self.shard_map.num_shards):
            _SHARDS_VISITED.inc()
            streams.append(self._shard_nn_stream(sid, operand))
        return heapq.merge(
            *streams, key=lambda item: (item[0], item[1], item[2])
        )

    def nn_search(self, operand: Any, limit: int | None = None) -> list[tuple]:
        """The nearest ``limit`` rows cluster-wide (all rows when None)."""
        out: list[tuple] = []
        for _d, _tid, _sid, row in self.nn_merged(operand):
            out.append(row)
            if limit is not None and len(out) >= limit:
                break
        return out


def _chunk(rows: Iterator[tuple], batch_size: int | None) -> Iterator[list[tuple]]:
    from repro.settings import SETTINGS

    size = SETTINGS.batch_size if batch_size is None else batch_size
    batch: list[tuple] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch
