"""Disk-based suffix tree as an SP-GiST instantiation (paper Section 6).

A suffix tree here is the paper's construction: a patricia trie over *all
suffixes* of the indexed strings. The substring-match operator ``@=`` then
reduces to a prefix search over suffixes — any word containing the query
substring has a suffix starting with it. This is what gives the 3-orders-of-
magnitude win over sequential scanning in Figure 16, since no other access
method supports substring search at all.

The leaf key is the suffix; the leaf value carries ``(original_word, tid)``
so results can be reported (and deduplicated — one word contributes up to
``len(word)`` suffixes) without a heap fetch.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.config import SPGiSTConfig
from repro.core.external import Query
from repro.core.tree import SPGiSTIndex
from repro.indexes.trie import DEFAULT_BUCKET_SIZE, TrieMethods
from repro.storage.buffer import BufferPool


class SuffixTreeMethods(TrieMethods):
    """Trie external methods rebadged with the substring operator ``@=``.

    ``@=`` navigates exactly like the trie's prefix operator ``#=`` — the
    engine applies it to suffix keys, which turns prefix semantics into
    substring semantics at the word level.
    """

    supported_operators = ("=", "#=", "?=", "*=", "@=", "@@")

    def get_parameters(self) -> SPGiSTConfig:
        base = super().get_parameters()
        return SPGiSTConfig(
            node_predicate=base.node_predicate,
            key_type="varchar (suffixes)",
            num_space_partitions=base.num_space_partitions,
            resolution=base.resolution,
            path_shrink=base.path_shrink,
            node_shrink=base.node_shrink,
            bucket_size=base.bucket_size,
        )

    def consistent(self, node_predicate, entry_predicate, query, level):
        if query.op == "@=":
            query = Query("#=", query.operand)
        return super().consistent(node_predicate, entry_predicate, query, level)

    def leaf_consistent(self, key, query, level):
        if query.op == "@=":
            query = Query("#=", query.operand)
        return super().leaf_consistent(key, query, level)

    @staticmethod
    def extract_keys(word: str) -> Iterable[str]:
        """All suffixes of ``word`` (the keys one row contributes)."""
        return (word[i:] for i in range(len(word)))


class SuffixTreeIndex(SPGiSTIndex):
    """Substring-search index: a patricia trie over every suffix.

    ``insert_word`` fans one word out into its suffixes;
    ``search_substring`` runs ``@=`` and deduplicates word-level hits.
    """

    def __init__(
        self,
        buffer: BufferPool,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        name: str = "sp_suffix",
        page_capacity: int | None = None,
    ) -> None:
        super().__init__(
            buffer,
            SuffixTreeMethods(bucket_size=bucket_size),
            name=name,
            page_capacity=page_capacity,
        )
        self._word_count = 0

    def insert_word(self, word: str, value: Any = None) -> None:
        """Index ``word``: one trie item per suffix."""
        for suffix in SuffixTreeMethods.extract_keys(word):
            self.insert(suffix, (word, value))
        self._word_count += 1

    def delete_word(self, word: str, value: Any = None) -> None:
        """Remove every suffix item of ``word`` (with ``value`` when given)."""
        for suffix in set(SuffixTreeMethods.extract_keys(word)):
            if value is None:
                self.delete(suffix)
            else:
                self.delete(suffix, (word, value))
        self._word_count -= 1

    @property
    def word_count(self) -> int:
        return self._word_count

    def search_substring(self, needle: str) -> list[tuple[str, Any]]:
        """Distinct ``(word, value)`` pairs whose word contains ``needle``."""
        hits: dict[tuple[str, Any], None] = {}
        for _suffix, payload in self.search(Query("@=", needle)):
            hits.setdefault(payload, None)
        return list(hits.keys())
