"""SP-GiST instantiations (the paper's external-method implementations).

Each module provides one ``ExternalMethods`` subclass — the less-than-10%
of index code a developer writes (paper Table 7) — plus small convenience
wrappers. All of them run on the shared internal methods in
:mod:`repro.core`.
"""

from repro.indexes.trie import TrieMethods, TrieIndex
from repro.indexes.suffix import SuffixTreeMethods, SuffixTreeIndex
from repro.indexes.kdtree import KDTreeMethods, KDTreeIndex
from repro.indexes.pquadtree import PointQuadtreeMethods, PointQuadtreeIndex
from repro.indexes.prquadtree import PRQuadtreeMethods, PRQuadtreeIndex
from repro.indexes.pmr import PMRQuadtreeMethods, PMRQuadtreeIndex

__all__ = [
    "TrieMethods",
    "TrieIndex",
    "SuffixTreeMethods",
    "SuffixTreeIndex",
    "KDTreeMethods",
    "KDTreeIndex",
    "PointQuadtreeMethods",
    "PointQuadtreeIndex",
    "PRQuadtreeMethods",
    "PRQuadtreeIndex",
    "PMRQuadtreeMethods",
    "PMRQuadtreeIndex",
]
