"""Disk-based PMR quadtree as an SP-GiST instantiation (paper Section 6).

The PMR quadtree [30] indexes *line segments* with a space-driven
decomposition: every inner node's region splits into four equal quadrants,
and a segment is stored in **every** leaf block it crosses (a spanning
object — ``choose`` returns ``DescendMultiple``). The PMR splitting rule is
probabilistic-insertion-driven: when an insertion pushes a block past the
*splitting threshold*, the block splits exactly once — children are not
re-split even if still over the threshold (``recurse_overfull = False``);
a later insertion into an over-threshold child triggers that child's split.
The decomposition depth is bounded by ``Resolution``.

Operators: ``=`` exact segment match, ``&&`` window intersection (the
paper's range/window search on segments), ``@@`` nearest neighbour by
point-to-segment distance.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.config import PathShrink, SPGiSTConfig
from repro.core.external import (
    ChooseResult,
    DescendMultiple,
    ExternalMethods,
    PickSplitResult,
    Query,
)
from repro.core.tree import SPGiSTIndex
from repro.geometry.box import Box
from repro.geometry.distance import point_to_box_distance, point_to_segment_distance
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment
from repro.storage.buffer import BufferPool

#: Default PMR splitting threshold (segments per block before a split).
DEFAULT_THRESHOLD = 8

#: Default maximum decomposition depth.
DEFAULT_RESOLUTION = 16


class PMRQuadtreeMethods(ExternalMethods):
    """External methods of the PMR quadtree over ``world``."""

    supported_operators = ("=", "&&", "@@")
    equality_operator = "="
    spanning = True

    def __init__(
        self,
        world: Box,
        threshold: int = DEFAULT_THRESHOLD,
        resolution: int = DEFAULT_RESOLUTION,
    ) -> None:
        self.world = world
        self._config = SPGiSTConfig(
            node_predicate="quadrant region box",
            key_type="line segment",
            num_space_partitions=4,
            resolution=resolution,
            path_shrink=PathShrink.NEVER_SHRINK,
            node_shrink=False,
            bucket_size=threshold,
        )

    def get_parameters(self) -> SPGiSTConfig:
        return self._config

    def initial_root_predicate(self) -> Box:
        return self.world

    # -- navigation (insert) ---------------------------------------------------

    def choose(
        self,
        node_predicate: Any,
        entries: Sequence[Any],
        key: Any,
        level: int,
    ) -> ChooseResult:
        segment: LineSegment = key
        targets = tuple(
            index
            for index, quadrant in enumerate(entries)
            if segment.intersects_box(quadrant)
        )
        if not targets:
            # Clamp out-of-world segments to the nearest quadrant so the
            # insert cannot dead-end; documented as world-box clipping.
            targets = (self._nearest_quadrant(entries, segment),)
        return DescendMultiple(targets, level_delta=1)

    @staticmethod
    def _nearest_quadrant(entries: Sequence[Any], segment: LineSegment) -> int:
        mid = segment.midpoint()
        distances = [point_to_box_distance(mid, box) for box in entries]
        return distances.index(min(distances))

    # -- decomposition ------------------------------------------------------------

    def picksplit(
        self,
        items: Sequence[tuple[Any, Any]],
        level: int,
        parent_predicate: Any = None,
    ) -> PickSplitResult:
        region: Box = parent_predicate if parent_predicate is not None else self.world
        partitions: list[tuple[Any, list[tuple[Any, Any]]]] = []
        for quadrant in region.quadrants():
            members = [
                (segment, value)
                for segment, value in items
                if segment.intersects_box(quadrant)
            ]
            partitions.append((quadrant, members))
        return PickSplitResult(
            node_predicate=region,
            partitions=partitions,
            level_delta=1,
            recurse_overfull=False,  # the PMR rule: one split per violation
        )

    # -- navigation (search) ------------------------------------------------------

    def consistent(
        self,
        node_predicate: Any,
        entry_predicate: Any,
        query: Query,
        level: int,
    ) -> bool:
        quadrant: Box = entry_predicate
        if query.op == "=":
            segment: LineSegment = query.operand
            return segment.intersects_box(quadrant)
        if query.op == "&&":
            window: Box = query.operand
            return quadrant.intersects(window)
        raise KeyError(f"PMR quadtree does not support operator {query.op!r}")

    def leaf_consistent(self, key: Any, query: Query, level: int) -> bool:
        if query.op == "=":
            return key == query.operand
        if query.op == "&&":
            segment: LineSegment = key
            window: Box = query.operand
            return segment.intersects_box(window)
        raise KeyError(f"PMR quadtree does not support operator {query.op!r}")

    # -- NN search (point query → nearest segments) -------------------------------------

    def nn_initial_state(self, query: Any) -> None:
        return None  # entry predicates are self-describing regions

    def nn_inner_distance(
        self,
        query: Any,
        node_predicate: Any,
        entry_predicate: Any,
        level: int,
        parent_state: Any,
    ) -> tuple[float, Any]:
        quadrant: Box = entry_predicate
        return point_to_box_distance(query, quadrant), None

    def nn_leaf_distance(self, query: Any, key: Any) -> float:
        return point_to_segment_distance(query, key)


class PMRQuadtreeIndex(SPGiSTIndex):
    """Convenience wrapper: an SP-GiST index preconfigured as a PMR quadtree."""

    def __init__(
        self,
        buffer: BufferPool,
        world: Box,
        threshold: int = DEFAULT_THRESHOLD,
        resolution: int = DEFAULT_RESOLUTION,
        name: str = "sp_pmr",
        page_capacity: int | None = None,
    ) -> None:
        super().__init__(
            buffer,
            PMRQuadtreeMethods(world, threshold=threshold, resolution=resolution),
            name=name,
            page_capacity=page_capacity,
        )

    def search_exact(self, segment: LineSegment) -> list[tuple[LineSegment, Any]]:
        """Exact segment-match search (operator =)."""
        return self.search_list(Query("=", segment))

    def search_window(self, window: Box) -> list[tuple[LineSegment, Any]]:
        """Window search: segments crossing ``window`` (operator &&)."""
        return self.search_list(Query("&&", window))

    def nearest_to(self, point: Point, k: int) -> list[tuple[float, LineSegment, Any]]:
        """The ``k`` segments nearest to ``point`` (operator @@)."""
        from repro.core.nn import nearest

        return nearest(self, point, k)
