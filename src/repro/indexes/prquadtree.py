"""Disk-based PR (point-region) quadtree as an SP-GiST instantiation.

The *space-driven* sibling of the data-driven point quadtree in
:mod:`repro.indexes.pquadtree` (paper Section 3's space-driven vs
data-driven distinction, Figure 2 vs Figure 3): every decomposition splits
the *region* into four equal quadrants regardless of the data, points live
only in leaf buckets, and the recursion depth is bounded by ``Resolution``.
This is also the shape of PostgreSQL's own ``quad_point_ops`` opclass that
SP-GiST later shipped with, which makes the variant worth having alongside
the paper's data-driven one.

Operators: ``@`` point equality, ``^`` inside-box (range), ``@@`` nearest
neighbour under Euclidean distance.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.config import PathShrink, SPGiSTConfig
from repro.core.external import (
    ChooseResult,
    Descend,
    ExternalMethods,
    PickSplitResult,
    Query,
)
from repro.core.tree import SPGiSTIndex
from repro.geometry.box import Box
from repro.geometry.distance import euclidean, point_to_box_distance
from repro.geometry.point import Point
from repro.storage.buffer import BufferPool

#: Default leaf bucket capacity.
DEFAULT_BUCKET_SIZE = 8

#: Default maximum decomposition depth.
DEFAULT_RESOLUTION = 20


def _quadrant_index(point: Point, region: Box) -> int:
    """Index (0..3, NW/NE/SW/SE order of :meth:`Box.quadrants`) of the
    quadrant of ``region`` containing ``point`` (ties go east/north)."""
    cx = (region.xmin + region.xmax) / 2.0
    cy = (region.ymin + region.ymax) / 2.0
    north = point.y >= cy
    east = point.x >= cx
    if north:
        return 1 if east else 0
    return 3 if east else 2


class PRQuadtreeMethods(ExternalMethods):
    """External methods of the space-driven PR quadtree over ``world``."""

    supported_operators = ("@", "^", "@@")
    equality_operator = "@"

    def __init__(
        self,
        world: Box,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        resolution: int = DEFAULT_RESOLUTION,
    ) -> None:
        self.world = world
        self._config = SPGiSTConfig(
            node_predicate="quadrant region box",
            key_type="point",
            num_space_partitions=4,
            resolution=resolution,
            path_shrink=PathShrink.NEVER_SHRINK,
            node_shrink=False,
            bucket_size=bucket_size,
        )

    def get_parameters(self) -> SPGiSTConfig:
        return self._config

    def initial_root_predicate(self) -> Box:
        return self.world

    # -- navigation (insert) ---------------------------------------------------

    def choose(
        self,
        node_predicate: Any,
        entries: Sequence[Any],
        key: Any,
        level: int,
    ) -> ChooseResult:
        region: Box = node_predicate
        clamped = Point(
            min(max(key.x, region.xmin), region.xmax),
            min(max(key.y, region.ymin), region.ymax),
        )
        return Descend(_quadrant_index(clamped, region), level_delta=1)

    # -- decomposition ------------------------------------------------------------

    def picksplit(
        self,
        items: Sequence[tuple[Any, Any]],
        level: int,
        parent_predicate: Any = None,
    ) -> PickSplitResult:
        region: Box = parent_predicate if parent_predicate is not None else self.world
        quadrants = region.quadrants()
        partitions: list[tuple[Any, list[tuple[Any, Any]]]] = [
            (quadrant, []) for quadrant in quadrants
        ]
        for point, value in items:
            clamped = Point(
                min(max(point.x, region.xmin), region.xmax),
                min(max(point.y, region.ymin), region.ymax),
            )
            partitions[_quadrant_index(clamped, region)][1].append((point, value))
        occupied = sum(1 for _q, members in partitions if members)
        return PickSplitResult(
            node_predicate=region,
            partitions=partitions,
            level_delta=1,
            recurse_overfull=True,
            progress=occupied > 1,
        )

    # -- navigation (search) ------------------------------------------------------

    def consistent(
        self,
        node_predicate: Any,
        entry_predicate: Any,
        query: Query,
        level: int,
    ) -> bool:
        quadrant: Box = entry_predicate
        if query.op == "@":
            # Out-of-world points are clamped on insert; mirror that here so
            # equality search reaches the same quadrant chain.
            q: Point = query.operand
            clamped = Point(
                min(max(q.x, self.world.xmin), self.world.xmax),
                min(max(q.y, self.world.ymin), self.world.ymax),
            )
            return quadrant.contains_point(clamped)
        if query.op == "^":
            return quadrant.intersects(query.operand)
        raise KeyError(f"PR quadtree does not support operator {query.op!r}")

    def leaf_consistent(self, key: Any, query: Query, level: int) -> bool:
        if query.op == "@":
            return key == query.operand
        if query.op == "^":
            return query.operand.contains_point(key)
        raise KeyError(f"PR quadtree does not support operator {query.op!r}")

    # -- NN search (Euclidean) -------------------------------------------------------

    def nn_inner_distance(
        self,
        query: Any,
        node_predicate: Any,
        entry_predicate: Any,
        level: int,
        parent_state: Any,
    ) -> tuple[float, Any]:
        quadrant: Box = entry_predicate
        return point_to_box_distance(query, quadrant), None

    def nn_leaf_distance(self, query: Any, key: Any) -> float:
        return euclidean(query, key)


class PRQuadtreeIndex(SPGiSTIndex):
    """Convenience wrapper: an SP-GiST index preconfigured as a PR quadtree."""

    def __init__(
        self,
        buffer: BufferPool,
        world: Box,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        resolution: int = DEFAULT_RESOLUTION,
        name: str = "sp_prquadtree",
        page_capacity: int | None = None,
    ) -> None:
        super().__init__(
            buffer,
            PRQuadtreeMethods(world, bucket_size=bucket_size,
                              resolution=resolution),
            name=name,
            page_capacity=page_capacity,
        )

    def search_point(self, point: Point) -> list[tuple[Point, Any]]:
        """Exact point-match search (operator @)."""
        return self.search_list(Query("@", point))

    def search_range(self, box: Box) -> list[tuple[Point, Any]]:
        """Range search: all points inside ``box`` (operator ^)."""
        return self.search_list(Query("^", box))
