"""Disk-based kd-tree as an SP-GiST instantiation (paper Table 1).

Parameter block (paper): ``PathShrink = NeverShrink``, ``NodeShrink = False``,
``BucketSize = 1``, ``NoOfSpacePartitions = 2``, ``NodePredicate = "left",
"right", or blank``, ``KeyType = point``.

Layout follows the paper's PickSplit row exactly: when a one-point leaf
overflows, the *old* point becomes the discriminator — it moves into a child
under the BLANK entry — and the new point goes under "left" or "right"
according to the coordinate compared at this level (x on even levels, y on
odd levels). Ties (coordinate equal to the discriminator's) go right, so
equality search must always consider the right child too.

Operators (paper Table 4): ``@`` point equality, ``^`` inside-box (range),
``@@`` nearest neighbour under Euclidean distance.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core.config import PathShrink, SPGiSTConfig
from repro.core.external import (
    AddEntry,
    ChooseResult,
    Descend,
    ExternalMethods,
    PickSplitResult,
    Query,
)
from repro.core.node import BLANK
from repro.core.tree import SPGiSTIndex
from repro.geometry.box import Box
from repro.geometry.distance import euclidean, point_to_box_distance
from repro.geometry.point import Point
from repro.storage.buffer import BufferPool

LEFT = "left"
RIGHT = "right"

#: The unbounded region a root subtree covers before any clipping.
_WORLD = Box(-math.inf, -math.inf, math.inf, math.inf)


def _axis(level: int) -> int:
    """Discriminated axis at ``level``: x at the root, alternating below."""
    return level % 2


class KDTreeMethods(ExternalMethods):
    """External methods of the kd-tree (paper Table 1, right column)."""

    supported_operators = ("@", "^", "@@")
    equality_operator = "@"

    def get_parameters(self) -> SPGiSTConfig:
        return SPGiSTConfig(
            node_predicate='"left", "right", or blank',
            key_type="point",
            num_space_partitions=2,
            resolution=0,
            path_shrink=PathShrink.NEVER_SHRINK,
            node_shrink=False,
            bucket_size=1,
        )

    # -- navigation (insert) ---------------------------------------------------

    def choose(
        self,
        node_predicate: Any,
        entries: Sequence[Any],
        key: Any,
        level: int,
    ) -> ChooseResult:
        discriminator: Point = node_predicate
        axis = _axis(level)
        side = LEFT if key.coord(axis) < discriminator.coord(axis) else RIGHT
        for index, predicate in enumerate(entries):
            if predicate == side:
                return Descend(index, level_delta=1)
        return AddEntry(side, level_delta=1)

    # -- decomposition ------------------------------------------------------------

    def picksplit(
        self,
        items: Sequence[tuple[Any, Any]],
        level: int,
        parent_predicate: Any = None,
    ) -> PickSplitResult:
        """Paper: old point → blank child; new point → left/right child."""
        old = items[0]
        axis = _axis(level)
        discriminator: Point = old[0]
        left: list[tuple[Any, Any]] = []
        right: list[tuple[Any, Any]] = []
        for key, value in items[1:]:
            if key.coord(axis) < discriminator.coord(axis):
                left.append((key, value))
            else:
                right.append((key, value))
        return PickSplitResult(
            node_predicate=discriminator,
            partitions=[(BLANK, [old]), (LEFT, left), (RIGHT, right)],
            level_delta=1,
            recurse_overfull=True,
        )

    # -- navigation (search) ------------------------------------------------------

    def consistent(
        self,
        node_predicate: Any,
        entry_predicate: Any,
        query: Query,
        level: int,
    ) -> bool:
        discriminator: Point = node_predicate
        axis = _axis(level)
        pivot = discriminator.coord(axis)
        if query.op == "@":
            q: Point = query.operand
            if entry_predicate is BLANK:
                return q == discriminator
            if entry_predicate == LEFT:
                return q.coord(axis) < pivot
            return q.coord(axis) >= pivot  # ties were inserted right
        if query.op == "^":
            box: Box = query.operand
            if entry_predicate is BLANK:
                return box.contains_point(discriminator)
            if entry_predicate == LEFT:
                return (box.xmin if axis == 0 else box.ymin) < pivot
            return (box.xmax if axis == 0 else box.ymax) >= pivot
        raise KeyError(f"kd-tree does not support operator {query.op!r}")

    def leaf_consistent(self, key: Any, query: Query, level: int) -> bool:
        if query.op == "@":
            return key == query.operand
        if query.op == "^":
            return query.operand.contains_point(key)
        raise KeyError(f"kd-tree does not support operator {query.op!r}")

    # -- NN search (Euclidean) -------------------------------------------------------

    def nn_initial_state(self, query: Any) -> Box:
        return _WORLD

    def nn_inner_distance(
        self,
        query: Any,
        node_predicate: Any,
        entry_predicate: Any,
        level: int,
        parent_state: Any,
    ) -> tuple[float, Any]:
        region: Box = parent_state
        discriminator: Point = node_predicate
        if entry_predicate is BLANK:
            return euclidean(query, discriminator), region
        axis = _axis(level)
        pivot = discriminator.coord(axis)
        if entry_predicate == LEFT:
            child = (
                Box(region.xmin, region.ymin, min(region.xmax, pivot), region.ymax)
                if axis == 0
                else Box(region.xmin, region.ymin, region.xmax, min(region.ymax, pivot))
            )
        else:
            child = (
                Box(max(region.xmin, pivot), region.ymin, region.xmax, region.ymax)
                if axis == 0
                else Box(region.xmin, max(region.ymin, pivot), region.xmax, region.ymax)
            )
        return point_to_box_distance(query, child), child

    def nn_leaf_distance(self, query: Any, key: Any) -> float:
        return euclidean(query, key)


class KDTreeIndex(SPGiSTIndex):
    """Convenience wrapper: an SP-GiST index preconfigured as a kd-tree."""

    def __init__(
        self,
        buffer: BufferPool,
        name: str = "sp_kdtree",
        page_capacity: int | None = None,
    ) -> None:
        super().__init__(
            buffer, KDTreeMethods(), name=name, page_capacity=page_capacity
        )

    def search_point(self, point: Point) -> list[tuple[Point, Any]]:
        """Exact point-match search (operator @)."""
        return self.search_list(Query("@", point))

    def search_range(self, box: Box) -> list[tuple[Point, Any]]:
        """Range search: all points inside ``box`` (operator ^)."""
        return self.search_list(Query("^", box))
