"""Disk-based patricia trie as an SP-GiST instantiation (paper Table 1).

Parameter block (paper): ``PathShrink = TreeShrink``, ``NodeShrink = True``,
``BucketSize = B``, ``NoOfSpacePartitions = 27`` (letters a–z plus blank),
``NodePredicate = letter or blank``, ``KeyType = varchar``.

Inner-node layout: the node predicate is the *collapsed common prefix*
(patricia path compression — empty for NeverShrink/LeafShrink variants); each
entry predicate is one letter, or BLANK for keys that end exactly at this
node. ``level`` counts the characters of the key consumed so far.

Operators (paper Tables 3–4): ``=`` equality, ``#=`` prefix match, ``?=``
regular-expression match with the single-character wildcard ``?``, and ``@@``
nearest-neighbour under Hamming distance.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.config import PathShrink, SPGiSTConfig
from repro.core.external import (
    AddEntry,
    ChooseResult,
    Descend,
    ExternalMethods,
    PickSplitResult,
    Query,
    SplitPrefix,
)
from repro.core.node import BLANK
from repro.core.tree import SPGiSTIndex
from repro.geometry.distance import hamming, prefix_hamming_lower_bound
from repro.storage.buffer import BufferPool

#: Default leaf bucket size ("B" in the paper's parameter table).
DEFAULT_BUCKET_SIZE = 32

#: Wildcard character of the ``?=`` regular-expression operator.
WILDCARD = "?"


def _common_prefix(strings: Sequence[str]) -> str:
    """Longest common prefix of ``strings`` (empty for an empty sequence)."""
    if not strings:
        return ""
    shortest = min(strings, key=len)
    for i, ch in enumerate(shortest):
        for s in strings:
            if s[i] != ch:
                return shortest[:i]
    return shortest


def regex_matches(pattern: str, text: str) -> bool:
    """The paper's ``?=`` semantics: equal length, ``?`` matches any char."""
    if len(pattern) != len(text):
        return False
    return all(p == WILDCARD or p == c for p, c in zip(pattern, text))


#: Multi-character wildcard of the ``*=`` glob operator (extension: the
#: paper supports only ``?`` and leaves richer patterns to future work).
STAR = "*"


def glob_matches(pattern: str, text: str) -> bool:
    """Glob semantics: ``?`` matches one char, ``*`` any sequence.

    Classic two-pointer matcher with backtracking to the last star.
    """
    p = t = 0
    star = -1
    star_t = 0
    while t < len(text):
        if p < len(pattern) and (pattern[p] == WILDCARD or pattern[p] == text[t]):
            p += 1
            t += 1
        elif p < len(pattern) and pattern[p] == STAR:
            star = p
            star_t = t
            p += 1
        elif star >= 0:
            p = star + 1
            star_t += 1
            t = star_t
        else:
            return False
    while p < len(pattern) and pattern[p] == STAR:
        p += 1
    return p == len(pattern)


def _glob_min_length(pattern: str) -> int:
    """Minimum text length a glob pattern can match (non-star characters)."""
    return sum(1 for ch in pattern if ch != STAR)


class TrieMethods(ExternalMethods):
    """External methods of the (patricia) trie.

    ``path_shrink`` selects the variant of paper Figure 1: TREE_SHRINK is
    the patricia trie (prefix collapse anywhere); NEVER_SHRINK and
    LEAF_SHRINK never install a non-empty node prefix (with bucketed leaves
    holding whole keys, leaf-level collapse is implicit, so the two differ
    only in name here). Used by ablation D2.
    """

    supported_operators = ("=", "#=", "?=", "*=", "@@")
    equality_operator = "="

    def __init__(
        self,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        path_shrink: PathShrink = PathShrink.TREE_SHRINK,
        node_shrink: bool = True,
        resolution: int = 0,
    ) -> None:
        self._config = SPGiSTConfig(
            node_predicate="letter or blank",
            key_type="varchar",
            num_space_partitions=27,
            resolution=resolution,
            path_shrink=path_shrink,
            node_shrink=node_shrink,
            bucket_size=bucket_size,
        )

    def get_parameters(self) -> SPGiSTConfig:
        return self._config

    # -- navigation (insert) ---------------------------------------------------

    def choose(
        self,
        node_predicate: Any,
        entries: Sequence[Any],
        key: Any,
        level: int,
    ) -> ChooseResult:
        prefix: str = node_predicate or ""
        rest = key[level:]
        if not rest.startswith(prefix):
            # Patricia conflict: the key diverges inside the collapsed
            # prefix. Split the prefix at the divergence point (Fig. 1c).
            common_len = 0
            limit = min(len(rest), len(prefix))
            while common_len < limit and rest[common_len] == prefix[common_len]:
                common_len += 1
            if common_len == len(prefix):  # pragma: no cover - startswith said no
                raise AssertionError("divergence point not found")
            return SplitPrefix(
                new_prefix=prefix[:common_len],
                old_entry_predicate=prefix[common_len],
                old_node_predicate=prefix[common_len + 1 :],
            )
        position = level + len(prefix)
        predicate: Any = BLANK if len(key) <= position else key[position]
        delta = len(prefix) + 1
        for index, entry_predicate in enumerate(entries):
            if entry_predicate == predicate:
                return Descend(index, level_delta=delta)
        return AddEntry(predicate, level_delta=delta)

    # -- decomposition ------------------------------------------------------------

    def picksplit(
        self,
        items: Sequence[tuple[Any, Any]],
        level: int,
        parent_predicate: Any = None,
    ) -> PickSplitResult:
        rests = [key[level:] for key, _ in items]
        if self._config.path_shrink is PathShrink.TREE_SHRINK:
            prefix = _common_prefix(rests)
        else:
            prefix = ""
        position = len(prefix)
        partitions: dict[Any, list[tuple[Any, Any]]] = {}
        if not self._config.node_shrink:
            # Figure 2a: space-driven partition set materialized up front —
            # all 26 letters plus blank, empties included.
            partitions[BLANK] = []
            for letter in "abcdefghijklmnopqrstuvwxyz":
                partitions[letter] = []
        for (key, value), rest in zip(items, rests):
            predicate: Any = BLANK if len(rest) <= position else rest[position]
            partitions.setdefault(predicate, []).append((key, value))
        # All items ending at the same position means the keys are identical
        # from here on — no decomposition can separate them (spill signal).
        occupied = [pred for pred, members in partitions.items() if members]
        separable = not (len(occupied) == 1 and occupied[0] is BLANK)
        return PickSplitResult(
            node_predicate=prefix,
            partitions=list(partitions.items()),
            level_delta=len(prefix) + 1,
            recurse_overfull=True,
            progress=separable,
        )

    # -- navigation (search) ------------------------------------------------------

    def consistent(
        self,
        node_predicate: Any,
        entry_predicate: Any,
        query: Query,
        level: int,
    ) -> bool:
        prefix: str = node_predicate or ""
        if query.op == "=":
            return self._consistent_exact(prefix, entry_predicate, query.operand, level)
        if query.op == "#=":
            return self._consistent_prefix(prefix, entry_predicate, query.operand, level)
        if query.op == "?=":
            return self._consistent_regex(prefix, entry_predicate, query.operand, level)
        if query.op == "*=":
            return self._consistent_glob(prefix, entry_predicate, query.operand, level)
        raise KeyError(f"trie does not support operator {query.op!r}")

    @staticmethod
    def _consistent_exact(
        prefix: str, entry_predicate: Any, q: str, level: int
    ) -> bool:
        """Paper Table 1: q[level] == E.letter, or blank past the key end."""
        if q[level : level + len(prefix)] != prefix:
            return False
        position = level + len(prefix)
        if entry_predicate is BLANK:
            return len(q) == position
        return position < len(q) and q[position] == entry_predicate

    @staticmethod
    def _consistent_prefix(
        prefix: str, entry_predicate: Any, p: str, level: int
    ) -> bool:
        """Descend while the path can still lead to keys starting with p."""
        for i, ch in enumerate(prefix):
            position = level + i
            if position < len(p) and p[position] != ch:
                return False
        position = level + len(prefix)
        if position >= len(p):
            return True  # path already covers the whole query prefix
        if entry_predicate is BLANK:
            return False  # keys ending here are shorter than p
        return entry_predicate == p[position]

    @staticmethod
    def _consistent_regex(
        prefix: str, entry_predicate: Any, pattern: str, level: int
    ) -> bool:
        """Filter on every non-wildcard character (paper Section 6).

        This is exactly why the trie tolerates leading wildcards where the
        B+-tree cannot: a ``?`` merely keeps all entries alive at that level.
        """
        for i, ch in enumerate(prefix):
            position = level + i
            if position >= len(pattern):
                return False  # key would be longer than the pattern
            if pattern[position] != WILDCARD and pattern[position] != ch:
                return False
        position = level + len(prefix)
        if entry_predicate is BLANK:
            return len(pattern) == position
        if position >= len(pattern):
            return False
        return pattern[position] == WILDCARD or pattern[position] == entry_predicate

    @staticmethod
    def _consistent_glob(
        prefix: str, entry_predicate: Any, pattern: str, level: int
    ) -> bool:
        """Admissible filter for glob patterns (extension operator ``*=``).

        Only the literal part before the first ``*`` can prune; beyond it
        every branch may still match (the star absorbs anything), and leaf
        filtering does the exact check. Never prunes a true match.
        """
        star_at = pattern.find(STAR)
        if star_at < 0:
            return TrieMethods._consistent_regex(
                prefix, entry_predicate, pattern, level
            )
        literal = pattern[:star_at]
        for i, ch in enumerate(prefix):
            position = level + i
            if position < len(literal) and literal[position] not in (WILDCARD, ch):
                return False
        position = level + len(prefix)
        if entry_predicate is BLANK:
            # Keys end here with length == position; a match needs at least
            # the pattern's non-star characters.
            return position >= _glob_min_length(pattern)
        if position < len(literal):
            return literal[position] in (WILDCARD, entry_predicate)
        return True

    def leaf_consistent(self, key: Any, query: Query, level: int) -> bool:
        if query.op == "=":
            return key == query.operand
        if query.op == "#=":
            return key.startswith(query.operand)
        if query.op == "?=":
            return regex_matches(query.operand, key)
        if query.op == "*=":
            return glob_matches(query.operand, key)
        raise KeyError(f"trie does not support operator {query.op!r}")

    # -- level bookkeeping -----------------------------------------------------------

    def level_delta(self, node_predicate: Any) -> int:
        return len(node_predicate or "") + 1

    # -- NN search (paper Section 5; Hamming distance) ---------------------------------

    def nn_initial_state(self, query: Any) -> Any:
        return ""  # accumulated path prefix from the root

    def nn_inner_distance(
        self,
        query: Any,
        node_predicate: Any,
        entry_predicate: Any,
        level: int,
        parent_state: Any,
    ) -> tuple[float, Any]:
        accumulated: str = (parent_state or "") + (node_predicate or "")
        if entry_predicate is BLANK:
            # The only key below a blank entry is the accumulated path itself.
            return float(hamming(accumulated, query)), accumulated
        child_prefix = accumulated + entry_predicate
        bound = prefix_hamming_lower_bound(child_prefix, query)
        return float(bound), child_prefix

    def nn_leaf_distance(self, query: Any, key: Any) -> float:
        return float(hamming(key, query))


class TrieIndex(SPGiSTIndex):
    """Convenience wrapper: an SP-GiST index preconfigured as a patricia trie."""

    def __init__(
        self,
        buffer: BufferPool,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        path_shrink: PathShrink = PathShrink.TREE_SHRINK,
        node_shrink: bool = True,
        name: str = "sp_trie",
        page_capacity: int | None = None,
    ) -> None:
        super().__init__(
            buffer,
            TrieMethods(
                bucket_size=bucket_size,
                path_shrink=path_shrink,
                node_shrink=node_shrink,
            ),
            name=name,
            page_capacity=page_capacity,
        )

    # Typed conveniences over the generic Query API.

    def search_equal(self, word: str) -> list[tuple[str, Any]]:
        """Exact-match search (operator =)."""
        return self.search_list(Query("=", word))

    def search_prefix(self, prefix: str) -> list[tuple[str, Any]]:
        """Prefix-match search (operator #=)."""
        return self.search_list(Query("#=", prefix))

    def search_regex(self, pattern: str) -> list[tuple[str, Any]]:
        """'?'-wildcard regular-expression search (operator ?=)."""
        return self.search_list(Query("?=", pattern))

    def search_glob(self, pattern: str) -> list[tuple[str, Any]]:
        """Extension: glob match with ``?`` and ``*`` (operator ``*=``)."""
        return self.search_list(Query("*=", pattern))
