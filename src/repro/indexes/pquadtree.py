"""Disk-based point quadtree as an SP-GiST instantiation (paper Figure 3a).

The point quadtree is *data-driven*: each inner node is centered on one of
the indexed points (the first point that landed in the region), and its four
partitions are the quadrants around that center. The center itself lives in
a child under the BLANK entry, mirroring the kd-tree's discriminator
handling.

Quadrant convention (closed on the >= side, ties go east/north):
``NE: x >= cx, y >= cy`` — ``NW: x < cx, y >= cy`` —
``SW: x < cx, y < cy`` — ``SE: x >= cx, y < cy``.

Operators: ``@`` point equality, ``^`` inside-box (range), ``@@`` nearest
neighbour under Euclidean distance.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core.config import PathShrink, SPGiSTConfig
from repro.core.external import (
    AddEntry,
    ChooseResult,
    Descend,
    ExternalMethods,
    PickSplitResult,
    Query,
)
from repro.core.node import BLANK
from repro.core.tree import SPGiSTIndex
from repro.geometry.box import Box
from repro.geometry.distance import euclidean, point_to_box_distance
from repro.geometry.point import Point
from repro.storage.buffer import BufferPool

NE, NW, SW, SE = "NE", "NW", "SW", "SE"
_QUADRANTS = (NE, NW, SW, SE)

_WORLD = Box(-math.inf, -math.inf, math.inf, math.inf)


def quadrant_of(point: Point, center: Point) -> str:
    """Quadrant of ``point`` relative to ``center`` (ties east/north)."""
    east = point.x >= center.x
    north = point.y >= center.y
    if east:
        return NE if north else SE
    return NW if north else SW


def quadrant_region(region: Box, center: Point, quadrant: str) -> Box:
    """Clip ``region`` to one quadrant around ``center``."""
    if quadrant == NE:
        return Box(
            max(region.xmin, center.x), max(region.ymin, center.y),
            region.xmax, region.ymax,
        )
    if quadrant == NW:
        return Box(
            region.xmin, max(region.ymin, center.y),
            min(region.xmax, center.x), region.ymax,
        )
    if quadrant == SW:
        return Box(
            region.xmin, region.ymin,
            min(region.xmax, center.x), min(region.ymax, center.y),
        )
    return Box(
        max(region.xmin, center.x), region.ymin,
        region.xmax, min(region.ymax, center.y),
    )


def _box_touches_quadrant(box: Box, center: Point, quadrant: str) -> bool:
    """Can ``box`` intersect the (unbounded) quadrant around ``center``?"""
    if quadrant == NE:
        return box.xmax >= center.x and box.ymax >= center.y
    if quadrant == NW:
        return box.xmin < center.x and box.ymax >= center.y
    if quadrant == SW:
        return box.xmin < center.x and box.ymin < center.y
    return box.xmax >= center.x and box.ymin < center.y


class PointQuadtreeMethods(ExternalMethods):
    """External methods of the data-driven point quadtree."""

    supported_operators = ("@", "^", "@@")
    equality_operator = "@"

    def __init__(self, bucket_size: int = 1) -> None:
        self._config = SPGiSTConfig(
            node_predicate="quadrant (NE/NW/SW/SE) or blank",
            key_type="point",
            num_space_partitions=4,
            resolution=0,
            path_shrink=PathShrink.NEVER_SHRINK,
            node_shrink=True,
            bucket_size=bucket_size,
        )

    def get_parameters(self) -> SPGiSTConfig:
        return self._config

    # -- navigation (insert) ---------------------------------------------------

    def choose(
        self,
        node_predicate: Any,
        entries: Sequence[Any],
        key: Any,
        level: int,
    ) -> ChooseResult:
        center: Point = node_predicate
        quadrant = quadrant_of(key, center)
        for index, predicate in enumerate(entries):
            if predicate == quadrant:
                return Descend(index, level_delta=1)
        return AddEntry(quadrant, level_delta=1)

    # -- decomposition ------------------------------------------------------------

    def picksplit(
        self,
        items: Sequence[tuple[Any, Any]],
        level: int,
        parent_predicate: Any = None,
    ) -> PickSplitResult:
        """The oldest point becomes the node center; the rest scatter."""
        center_item = items[0]
        center: Point = center_item[0]
        partitions: dict[Any, list[tuple[Any, Any]]] = {BLANK: [center_item]}
        for key, value in items[1:]:
            partitions.setdefault(quadrant_of(key, center), []).append((key, value))
        return PickSplitResult(
            node_predicate=center,
            partitions=list(partitions.items()),
            level_delta=1,
            recurse_overfull=True,
        )

    # -- navigation (search) ------------------------------------------------------

    def consistent(
        self,
        node_predicate: Any,
        entry_predicate: Any,
        query: Query,
        level: int,
    ) -> bool:
        center: Point = node_predicate
        if query.op == "@":
            q: Point = query.operand
            if entry_predicate is BLANK:
                return q == center
            return quadrant_of(q, center) == entry_predicate
        if query.op == "^":
            box: Box = query.operand
            if entry_predicate is BLANK:
                return box.contains_point(center)
            return _box_touches_quadrant(box, center, entry_predicate)
        raise KeyError(f"point quadtree does not support operator {query.op!r}")

    def leaf_consistent(self, key: Any, query: Query, level: int) -> bool:
        if query.op == "@":
            return key == query.operand
        if query.op == "^":
            return query.operand.contains_point(key)
        raise KeyError(f"point quadtree does not support operator {query.op!r}")

    # -- NN search (Euclidean) -------------------------------------------------------

    def nn_initial_state(self, query: Any) -> Box:
        return _WORLD

    def nn_inner_distance(
        self,
        query: Any,
        node_predicate: Any,
        entry_predicate: Any,
        level: int,
        parent_state: Any,
    ) -> tuple[float, Any]:
        region: Box = parent_state
        center: Point = node_predicate
        if entry_predicate is BLANK:
            return euclidean(query, center), region
        child = quadrant_region(region, center, entry_predicate)
        return point_to_box_distance(query, child), child

    def nn_leaf_distance(self, query: Any, key: Any) -> float:
        return euclidean(query, key)


class PointQuadtreeIndex(SPGiSTIndex):
    """Convenience wrapper: an SP-GiST index preconfigured as a point quadtree."""

    def __init__(
        self,
        buffer: BufferPool,
        bucket_size: int = 1,
        name: str = "sp_pquadtree",
        page_capacity: int | None = None,
    ) -> None:
        super().__init__(
            buffer,
            PointQuadtreeMethods(bucket_size=bucket_size),
            name=name,
            page_capacity=page_capacity,
        )

    def search_point(self, point: Point) -> list[tuple[Point, Any]]:
        """Exact point-match search (operator @)."""
        return self.search_list(Query("@", point))

    def search_range(self, box: Box) -> list[tuple[Point, Any]]:
        """Range search: all points inside ``box`` (operator ^)."""
        return self.search_list(Query("^", box))
