"""Line-segment workloads (paper Section 6, PMR quadtree vs R-tree).

Segments are short (bounded maximum extent) and uniformly placed in the
world box, matching the "large line segment database" style of the Hoel &
Samet comparison [24] the paper builds on.
"""

from __future__ import annotations

import math
import random

from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment
from repro.workloads.points import WORLD


def random_segments(
    count: int,
    max_length: float = 5.0,
    seed: int = 0,
    world: Box = WORLD,
    decimals: int = 3,
) -> list[LineSegment]:
    """``count`` random segments of length up to ``max_length``."""
    rng = random.Random(seed)

    def clamp(v: float, lo: float, hi: float) -> float:
        return min(max(v, lo), hi)

    segments = []
    for _ in range(count):
        x = rng.uniform(world.xmin, world.xmax)
        y = rng.uniform(world.ymin, world.ymax)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        length = rng.uniform(max_length * 0.1, max_length)
        bx = clamp(x + length * math.cos(angle), world.xmin, world.xmax)
        by = clamp(y + length * math.sin(angle), world.ymin, world.ymax)
        segments.append(
            LineSegment(
                Point(round(x, decimals), round(y, decimals)),
                Point(round(bx, decimals), round(by, decimals)),
            )
        )
    return segments
