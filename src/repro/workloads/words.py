"""String workloads (paper Section 6, trie vs B+-tree experiments).

The paper: "we generate datasets with size ranges from 500K words to 32M
words. The word size (key size) is uniformly distributed over the range
[1, 15], and the alphabet letters are from 'a' to 'z'."
"""

from __future__ import annotations

import random
import string

MIN_WORD_LENGTH = 1
MAX_WORD_LENGTH = 15
ALPHABET = string.ascii_lowercase


def random_words(
    count: int,
    seed: int = 0,
    min_length: int = MIN_WORD_LENGTH,
    max_length: int = MAX_WORD_LENGTH,
    alphabet: str = ALPHABET,
) -> list[str]:
    """``count`` random words with the paper's distribution."""
    rng = random.Random(seed)
    return [
        "".join(rng.choices(alphabet, k=rng.randint(min_length, max_length)))
        for _ in range(count)
    ]


def sample_prefixes(
    words: list[str], count: int, length: int = 3, seed: int = 1
) -> list[str]:
    """Query prefixes drawn from the data (so matches exist)."""
    rng = random.Random(seed)
    eligible = [w for w in words if len(w) >= length]
    if not eligible:
        raise ValueError(f"no words of length >= {length}")
    return [rng.choice(eligible)[:length] for _ in range(count)]


def regex_pattern_for(
    word: str, wildcard_positions: list[int], wildcard: str = "?"
) -> str:
    """Replace the given positions of ``word`` with the wildcard.

    Positions past the word's end are ignored, so callers can ask for e.g.
    "wildcards at positions 0 and 3" uniformly across word lengths.
    """
    chars = list(word)
    for position in wildcard_positions:
        if 0 <= position < len(chars):
            chars[position] = wildcard
    return "".join(chars)


def zipf_words(
    count: int,
    vocabulary: int = 2000,
    exponent: float = 1.1,
    seed: int = 0,
) -> list[str]:
    """Words drawn from a Zipf-distributed vocabulary (skewed workload).

    The paper's datasets are uniform; real text is heavily skewed. This
    generator builds a fixed vocabulary with :func:`random_words` and then
    samples it with Zipfian frequencies — useful for duplicate-heavy
    ablations (bucket spills, B+-tree duplicate runs).
    """
    rng = random.Random(seed)
    vocab = random_words(vocabulary, seed=seed + 1)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(vocabulary)]
    return rng.choices(vocab, weights=weights, k=count)


def regex_queries(
    words: list[str],
    count: int,
    wildcard_positions: list[int],
    seed: int = 2,
    min_length: int = 3,
) -> list[str]:
    """Wildcard patterns derived from data words (so matches exist)."""
    rng = random.Random(seed)
    eligible = [w for w in words if len(w) >= min_length]
    if not eligible:
        raise ValueError(f"no words of length >= {min_length}")
    return [
        regex_pattern_for(rng.choice(eligible), wildcard_positions)
        for _ in range(count)
    ]
