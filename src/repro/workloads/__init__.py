"""Synthetic dataset generators matching the paper's Section 6 workloads.

- :mod:`repro.workloads.words`: random words, lengths uniform on [1, 15],
  alphabet a–z (the trie/B+-tree experiments).
- :mod:`repro.workloads.points`: uniform 2-D points on [0, 100]² (the
  kd-tree/R-tree experiments), plus a clustered variant for ablations.
- :mod:`repro.workloads.segments`: random line segments inside [0, 100]²
  (the PMR-quadtree/R-tree experiments).

All generators take an explicit seed so every experiment is reproducible.
"""

from repro.workloads.words import (
    random_words,
    regex_pattern_for,
    sample_prefixes,
    zipf_words,
)
from repro.workloads.points import clustered_points, random_points, random_query_boxes
from repro.workloads.segments import random_segments

__all__ = [
    "random_words",
    "regex_pattern_for",
    "sample_prefixes",
    "zipf_words",
    "random_points",
    "clustered_points",
    "random_query_boxes",
    "random_segments",
]
