"""Point workloads (paper Section 6, kd-tree vs R-tree experiments).

The paper: "the x-axis and the y-axis range from 0 to 100. We generate
datasets of sizes that range from 250K to 4M two-dimensional points."
Coordinates are rounded to three decimals so exact-match queries are
well-defined across float round-trips.
"""

from __future__ import annotations

import random

from repro.geometry.box import Box
from repro.geometry.point import Point

WORLD = Box(0.0, 0.0, 100.0, 100.0)


def random_points(
    count: int, seed: int = 0, world: Box = WORLD, decimals: int = 3
) -> list[Point]:
    """``count`` uniform points inside ``world``."""
    rng = random.Random(seed)
    return [
        Point(
            round(rng.uniform(world.xmin, world.xmax), decimals),
            round(rng.uniform(world.ymin, world.ymax), decimals),
        )
        for _ in range(count)
    ]


def clustered_points(
    count: int,
    clusters: int = 8,
    spread: float = 3.0,
    seed: int = 0,
    world: Box = WORLD,
    decimals: int = 3,
) -> list[Point]:
    """Gaussian clusters (ablation workload for skewed data)."""
    rng = random.Random(seed)
    centers = [
        (
            rng.uniform(world.xmin + spread, world.xmax - spread),
            rng.uniform(world.ymin + spread, world.ymax - spread),
        )
        for _ in range(clusters)
    ]

    def clamp(v: float, lo: float, hi: float) -> float:
        return min(max(v, lo), hi)

    points = []
    for _ in range(count):
        cx, cy = rng.choice(centers)
        points.append(
            Point(
                round(clamp(rng.gauss(cx, spread), world.xmin, world.xmax), decimals),
                round(clamp(rng.gauss(cy, spread), world.ymin, world.ymax), decimals),
            )
        )
    return points


def random_query_boxes(
    count: int,
    side: float = 5.0,
    seed: int = 1,
    world: Box = WORLD,
) -> list[Box]:
    """Square query windows of the given side, fully inside ``world``."""
    rng = random.Random(seed)
    boxes = []
    for _ in range(count):
        x = rng.uniform(world.xmin, world.xmax - side)
        y = rng.uniform(world.ymin, world.ymax - side)
        boxes.append(Box(x, y, x + side, y + side))
    return boxes
