"""One place for every timing/limit knob the subsystems used to scatter.

Before this module, each layer hard-coded its own constants: the buffer
pool's transient-fault retry budget, the WAL's group-commit flush
threshold, the replica set's heartbeat/lag bounds. The server layer (PR 6)
adds a second family — lock-wait and statement timeouts, worker counts,
admission-queue bounds — and tests/chaos schedules need to tighten all of
them deterministically. So: one :class:`Settings` dataclass, one process
default (:data:`SETTINGS`), and ``REPRO_*`` environment overrides.

Layers resolve their defaults *at call time* (``None`` parameter ->
``SETTINGS.<field>``), so a test that assigns ``SETTINGS.lock_timeout``
(or exports ``REPRO_LOCK_TIMEOUT`` before the process starts) tightens
every component built afterwards without plumbing arguments through.

Override naming: field ``lock_timeout`` <- env ``REPRO_LOCK_TIMEOUT``,
parsed by the field's type (int/float/bool). Unknown variables are
ignored; malformed values raise at import, loudly, rather than silently
running with defaults.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass


@dataclass
class Settings:
    """Every consolidated timing/limit constant, with its prior home noted."""

    # -- server: locks and statements (new in PR 6) ---------------------------
    #: Seconds a lock acquisition may block before LockTimeoutError.
    lock_timeout: float = 5.0
    #: Seconds one statement may run (including lock waits) before
    #: StatementTimeoutError.
    statement_timeout: float = 10.0
    #: Rows between cooperative deadline checks inside long scans.
    deadline_check_interval: int = 64

    # -- server: sessions and admission control (new in PR 6) -----------------
    #: Concurrent sessions a SessionManager accepts.
    max_sessions: int = 1024
    #: Worker threads executing statements.
    worker_threads: int = 8
    #: Bounded statement queue; submissions beyond it are rejected with
    #: ServerOverloadedError (backpressure, never unbounded queueing).
    max_queue: int = 64
    #: Queue depth at which read-only statements shed to standby reads.
    shed_threshold: int = 32

    # -- executor: batch-at-a-time row processing (new in PR 8) ---------------
    #: Rows per executor batch. One knob shared by the batched read path
    #: (scan nodes yield row batches of this size) and the batched write
    #: path (``insert_many`` chunking in benches/loaders), replacing the
    #: scattered per-call-site literals. ``1`` degenerates to
    #: tuple-at-a-time semantics (the differential oracle sweeps this).
    batch_size: int = 256

    # -- buffer pool (was storage/buffer.py DEFAULT_MAX_RETRIES/_BACKOFF) -----
    #: Bounded retries for transient disk faults.
    disk_max_retries: int = 3
    #: Seconds of backoff before the first retry; doubles per attempt.
    disk_retry_backoff: float = 0.001

    # -- WAL (was storage/wal.py DEFAULT_FLUSH_THRESHOLD) ---------------------
    #: Group-commit flush threshold in buffered bytes.
    wal_flush_threshold: int = 256 * 1024

    # -- replication (was replicaset.py keyword defaults) ---------------------
    #: Consecutive missed heartbeats before failover is declared.
    replication_heartbeat_timeout: int = 3
    #: Max commits a standby may trail and still serve routed reads.
    replication_max_lag: int = 2

    @classmethod
    def from_env(cls, env: dict[str, str] | None = None) -> "Settings":
        """Defaults overlaid with ``REPRO_<FIELD>`` environment variables."""
        env = os.environ if env is None else env
        overrides: dict[str, object] = {}
        for field in dataclasses.fields(cls):
            raw = env.get(f"REPRO_{field.name.upper()}")
            if raw is None:
                continue
            if field.type in ("int", int):
                overrides[field.name] = int(raw)
            elif field.type in ("float", float):
                overrides[field.name] = float(raw)
            else:  # pragma: no cover - no such fields today
                overrides[field.name] = raw
        return cls(**overrides)

    def replace(self, **overrides: object) -> "Settings":
        """A copy with ``overrides`` applied (tests tighten bounds with it)."""
        return dataclasses.replace(self, **overrides)


#: The process-wide settings every layer resolves ``None`` defaults from.
SETTINGS = Settings.from_env()
