"""One place for every timing/limit knob the subsystems used to scatter.

Before this module, each layer hard-coded its own constants: the buffer
pool's transient-fault retry budget, the WAL's group-commit flush
threshold, the replica set's heartbeat/lag bounds. The server layer (PR 6)
adds a second family — lock-wait and statement timeouts, worker counts,
admission-queue bounds — and tests/chaos schedules need to tighten all of
them deterministically. So: one :class:`Settings` dataclass, one process
default (:data:`SETTINGS`), and ``REPRO_*`` environment overrides.

Layers resolve their defaults *at call time* (``None`` parameter ->
``SETTINGS.<field>``), so a test that assigns ``SETTINGS.lock_timeout``
(or exports ``REPRO_LOCK_TIMEOUT`` before the process starts) tightens
every component built afterwards without plumbing arguments through.

Override naming: field ``lock_timeout`` <- env ``REPRO_LOCK_TIMEOUT``,
parsed by the field's type (int/float/bool). Unknown variables are
ignored; malformed values raise :class:`~repro.errors.ConfigError` at
import — naming the offending variable — loudly, rather than silently
running with defaults or surfacing a bare ``ValueError`` deep inside
whichever constructor first reads the field.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class Settings:
    """Every consolidated timing/limit constant, with its prior home noted."""

    # -- server: locks and statements (new in PR 6) ---------------------------
    #: Seconds a lock acquisition may block before LockTimeoutError.
    lock_timeout: float = 5.0
    #: Seconds one statement may run (including lock waits) before
    #: StatementTimeoutError.
    statement_timeout: float = 10.0
    #: Rows between cooperative deadline checks inside long scans.
    deadline_check_interval: int = 64

    # -- server: sessions and admission control (new in PR 6) -----------------
    #: Concurrent sessions a SessionManager accepts.
    max_sessions: int = 1024
    #: Worker threads executing statements.
    worker_threads: int = 8
    #: Bounded statement queue; submissions beyond it are rejected with
    #: ServerOverloadedError (backpressure, never unbounded queueing).
    max_queue: int = 64
    #: Queue depth at which read-only statements shed to standby reads.
    shed_threshold: int = 32

    # -- executor: batch-at-a-time row processing (new in PR 8) ---------------
    #: Rows per executor batch. One knob shared by the batched read path
    #: (scan nodes yield row batches of this size) and the batched write
    #: path (``insert_many`` chunking in benches/loaders), replacing the
    #: scattered per-call-site literals. ``1`` degenerates to
    #: tuple-at-a-time semantics (the differential oracle sweeps this).
    batch_size: int = 256

    # -- buffer pool (was storage/buffer.py DEFAULT_MAX_RETRIES/_BACKOFF) -----
    #: Bounded retries for transient disk faults.
    disk_max_retries: int = 3
    #: Seconds of backoff before the first retry; doubles per attempt.
    disk_retry_backoff: float = 0.001

    # -- WAL (was storage/wal.py DEFAULT_FLUSH_THRESHOLD) ---------------------
    #: Group-commit flush threshold in buffered bytes.
    wal_flush_threshold: int = 256 * 1024

    # -- replication (was replicaset.py keyword defaults) ---------------------
    #: Consecutive missed heartbeats before failover is declared.
    replication_heartbeat_timeout: int = 3
    #: Max commits a standby may trail and still serve routed reads.
    replication_max_lag: int = 2

    # -- wire protocol and graceful drain (new in PR 9) -----------------------
    #: Largest request/response line either side will read; longer frames
    #: fail with a typed ProtocolError instead of unbounded buffering.
    max_message_bytes: int = 1 << 20
    #: Entries the server's idempotency-key dedup cache retains (LRU).
    dedup_cache_size: int = 4096
    #: Seconds SQLServer.drain() waits for in-flight statements before
    #: cleanly aborting the stragglers.
    drain_timeout: float = 5.0

    # -- client driver: pool, retries, breakers (new in PR 9) -----------------
    #: Pooled connections per endpoint.
    client_pool_size: int = 4
    #: Seconds an acquire() may wait for a pooled connection.
    client_acquire_timeout: float = 5.0
    #: Seconds to establish one TCP connection.
    client_connect_timeout: float = 2.0
    #: Overall per-operation deadline (connect + queue + execute + retries).
    client_op_timeout: float = 15.0
    #: Retry attempts before RetriesExceededError.
    client_max_retries: int = 8
    #: First backoff sleep in seconds; doubles per attempt (full jitter).
    client_backoff_base: float = 0.01
    #: Backoff ceiling in seconds.
    client_backoff_cap: float = 0.5
    #: Seconds a pooled connection may sit idle before a ping precedes reuse.
    client_health_check_interval: float = 30.0
    #: Consecutive endpoint failures that trip its breaker open.
    breaker_failure_threshold: int = 5
    #: Seconds an open breaker waits before letting one probe through.
    breaker_reset_timeout: float = 0.25

    # -- cluster: sharding and distributed commit (new in PR 10) --------------
    #: Rows a shard may hold before ``Cluster.maybe_split`` splits it.
    cluster_split_threshold: int = 4096
    #: Virtual hash buckets for hash-partitioned (string) shard maps; more
    #: buckets mean finer-grained splits at the cost of map size.
    cluster_hash_buckets: int = 64

    #: Fields that must parse > 0 from the environment; the rest of the
    #: numeric fields must be >= 0 (0 commonly means "disabled").
    _POSITIVE = frozenset({
        "max_sessions", "worker_threads", "max_queue", "batch_size",
        "deadline_check_interval", "wal_flush_threshold",
        "replication_heartbeat_timeout", "max_message_bytes",
        "dedup_cache_size", "client_pool_size",
        "breaker_failure_threshold",
        "cluster_split_threshold", "cluster_hash_buckets",
    })

    @classmethod
    def from_env(cls, env: dict[str, str] | None = None) -> "Settings":
        """Defaults overlaid with ``REPRO_<FIELD>`` environment variables.

        Malformed or out-of-range values raise
        :class:`~repro.errors.ConfigError` naming the variable: a typo'd
        override should stop the process at import, not resurface as a
        ``ValueError`` inside whichever constructor reads the field first.
        """
        env = os.environ if env is None else env
        overrides: dict[str, object] = {}
        for field in dataclasses.fields(cls):
            var = f"REPRO_{field.name.upper()}"
            raw = env.get(var)
            if raw is None:
                continue
            if field.type in ("int", int):
                kind, parse = "integer", int
            elif field.type in ("float", float):
                kind, parse = "number", float
            else:  # pragma: no cover - no such fields today
                overrides[field.name] = raw
                continue
            try:
                value = parse(raw)
            except ValueError:
                raise ConfigError(
                    f"{var}: expected {kind!s}, got {raw!r}"
                ) from None
            if field.name in cls._POSITIVE:
                if value <= 0:
                    raise ConfigError(
                        f"{var}: must be a positive {kind}, got {raw!r}"
                    )
            elif value < 0:
                raise ConfigError(
                    f"{var}: must be a non-negative {kind}, got {raw!r}"
                )
            overrides[field.name] = value
        return cls(**overrides)

    def replace(self, **overrides: object) -> "Settings":
        """A copy with ``overrides`` applied (tests tighten bounds with it)."""
        return dataclasses.replace(self, **overrides)


#: The process-wide settings every layer resolves ``None`` defaults from.
SETTINGS = Settings.from_env()
