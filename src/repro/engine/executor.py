"""Plan execution: turn an access path into a row stream.

Index scans resolve TIDs through the heap and re-check the predicate with
the operator procedure (harmless for our exact indexes, and it keeps the
executor correct if a lossy index is ever registered). NN plans yield rows
in non-decreasing distance order; the caller applies LIMIT by slicing the
iterator — the paper's "number of NNs controlled by the application using
cursors".

Resilience: an index scan that hits corruption (a failed page checksum or a
broken structural invariant) does not fail the query. The executor records
the incident, quarantines the index so the planner stops choosing it, and
finishes the query with a sequential scan — PostgreSQL operators call this
pattern "degrade and REINDEX later".
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.engine.planner import (
    IndexScanPlan,
    NNIndexScanPlan,
    NNSortScanPlan,
    Plan,
    SeqScanPlan,
)
from repro.errors import IndexCorruptionError, PageChecksumError, PlannerError
from repro.geometry.distance import (
    euclidean,
    hamming,
    point_to_segment_distance,
)
from repro.resilience.incidents import INCIDENTS


#: Signature of the optional degradation callback: (index, incident kind,
#: exception). Called after the incident is recorded and the index
#: quarantined, before the sequential-scan fallback starts.
OnDegrade = Callable[[Any, str, Exception], None]


def _quarantine(
    index: Any,
    incident: str,
    exc: Exception,
    on_degrade: OnDegrade | None = None,
) -> None:
    """Record the incident, quarantine the index, and purge its node cache.

    Purging is what keeps the deserialized-node cache honest under
    corruption: no live node object from the poisoned index survives into
    later scans (the planner also stops choosing it, but belt-and-braces).
    ``on_degrade`` lets a caller observe the degradation in-band — the
    replication read router uses it to flag a standby whose index went bad
    for resync instead of silently serving it degraded forever.
    """
    INCIDENTS.record(incident, index.name, exc)
    index.quarantined = True
    purge = getattr(index, "purge_node_cache", None)
    if purge is not None:
        purge()
    if on_degrade is not None:
        on_degrade(index, incident, exc)


def execute_plan(
    plan: Plan, on_degrade: OnDegrade | None = None
) -> Iterator[tuple]:
    """Yield the rows the plan produces, in plan order.

    ``on_degrade`` (optional) is invoked if an index scan hits corruption
    mid-flight and the executor falls back to the heap.
    """
    if isinstance(plan, (NNIndexScanPlan, NNSortScanPlan)):
        return _execute_nn(plan, on_degrade)
    if isinstance(plan, IndexScanPlan):
        return _execute_index_scan(plan, on_degrade)
    if isinstance(plan, SeqScanPlan):
        return _execute_seq_scan(plan)
    raise PlannerError(f"unknown plan node {type(plan).__name__}")


def _predicate_checker(plan: Plan) -> Callable[[tuple], bool]:
    predicate = plan.predicate
    if predicate is None:
        return lambda row: True
    table = plan.table
    position = table.column_index(predicate.column)
    column = table.columns[position]
    operator = table.catalog.operators_named(predicate.op, column.type_name)[0]
    operand = predicate.operand
    return lambda row: operator.apply(row[position], operand)


def _plan_snapshot(plan: Plan) -> Any:
    """Resolve the snapshot this plan reads through, exactly once.

    A plan stamped by an open transaction carries that transaction's
    snapshot; otherwise take a fresh statement snapshot now, so every
    heap fetch of this one execution — including the degradation
    fallback — sees the same database state.
    """
    if plan.snapshot is not None:
        return plan.snapshot
    return plan.table.current_snapshot()


def _execute_seq_scan(plan: SeqScanPlan) -> Iterator[tuple]:
    check = _predicate_checker(plan)
    snapshot = _plan_snapshot(plan)
    for _tid, row in plan.table.scan(snapshot):
        if check(row):
            yield row


def _execute_index_scan(
    plan: IndexScanPlan, on_degrade: OnDegrade | None = None
) -> Iterator[tuple]:
    check = _predicate_checker(plan)
    predicate = plan.predicate
    assert predicate is not None
    snapshot = _plan_snapshot(plan)
    emitted: set[Any] = set()
    tids = plan.index.scan(predicate.op, predicate.operand)
    while True:
        try:
            tid = next(tids)
        except StopIteration:
            return
        except (IndexCorruptionError, PageChecksumError) as exc:
            _quarantine(plan.index, "index-scan-degraded", exc, on_degrade)
            break
        # Index entries point at every heap version; the snapshot-aware
        # fetch filters out the invisible ones (PostgreSQL's division of
        # labour between the access method and the heap).
        row = plan.table.fetch(tid, snapshot)
        if row is not None and check(row):
            emitted.add(tid)
            yield row
    # Graceful degradation: the index is unreadable mid-scan, but the heap
    # is fine — finish with a sequential scan under the SAME snapshot,
    # skipping rows already produced, so the query still returns a
    # complete, correct result.
    for tid, row in plan.table.scan(snapshot):
        if tid in emitted:
            continue
        if check(row):
            yield row


def _nn_distance_function(type_name: str) -> Callable[[Any, Any], float]:
    if type_name == "varchar":
        return lambda value, query: float(hamming(value, query))
    if type_name == "point":
        return euclidean
    if type_name == "lseg":
        return lambda value, query: point_to_segment_distance(query, value)
    raise PlannerError(f"no NN distance function for type {type_name!r}")


def _execute_nn(
    plan: Plan, on_degrade: OnDegrade | None = None
) -> Iterator[tuple]:
    predicate = plan.predicate
    assert predicate is not None
    snapshot = _plan_snapshot(plan)
    if isinstance(plan, NNIndexScanPlan):
        emitted: set[Any] = set()
        tids = plan.index.nn_scan(predicate.operand)
        while True:
            try:
                tid = next(tids)
            except StopIteration:
                return
            except (IndexCorruptionError, PageChecksumError) as exc:
                _quarantine(plan.index, "nn-scan-degraded", exc, on_degrade)
                break
            row = plan.table.fetch(tid, snapshot)
            if row is not None:
                emitted.add(tid)
                yield row
        # Graceful degradation, mirroring _execute_index_scan: the index
        # died mid-stream, but every row it already produced was one of the
        # true nearest neighbours, so finishing with the sort-scan path —
        # skipping those TIDs — continues the stream in non-decreasing
        # distance order with no duplicates and no gaps.
        yield from _nn_sort_scan(plan, skip=emitted, snapshot=snapshot)
        return
    # Fallback: materialize and sort by distance (no NN-capable index).
    yield from _nn_sort_scan(plan, snapshot=snapshot)


def _nn_sort_scan(
    plan: Plan, skip: set[Any] | None = None, snapshot: Any = None
) -> Iterator[tuple]:
    """Heap-scan NN: materialize distances and sort (``skip`` = TIDs done)."""
    predicate = plan.predicate
    assert predicate is not None
    table = plan.table
    position = table.column_index(predicate.column)
    column = table.columns[position]
    distance = _nn_distance_function(column.type_name)
    if snapshot is None:
        snapshot = _plan_snapshot(plan)
    rows = [
        (distance(row[position], predicate.operand), tid, row)
        for tid, row in table.scan(snapshot)
        if skip is None or tid not in skip
    ]
    rows.sort(key=lambda item: (item[0], item[1]))
    for _d, _tid, row in rows:
        yield row
