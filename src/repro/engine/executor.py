"""Plan execution: turn an access path into a row stream.

Index scans resolve TIDs through the heap and re-check the predicate with
the operator procedure (harmless for our exact indexes, and it keeps the
executor correct if a lossy index is ever registered). NN plans yield rows
in non-decreasing distance order; the caller applies LIMIT by slicing the
iterator — the paper's "number of NNs controlled by the application using
cursors".
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.engine.planner import (
    IndexScanPlan,
    NNIndexScanPlan,
    NNSortScanPlan,
    Plan,
    SeqScanPlan,
)
from repro.errors import PlannerError
from repro.geometry.distance import (
    euclidean,
    hamming,
    point_to_segment_distance,
)
def execute_plan(plan: Plan) -> Iterator[tuple]:
    """Yield the rows the plan produces, in plan order."""
    if isinstance(plan, (NNIndexScanPlan, NNSortScanPlan)):
        return _execute_nn(plan)
    if isinstance(plan, IndexScanPlan):
        return _execute_index_scan(plan)
    if isinstance(plan, SeqScanPlan):
        return _execute_seq_scan(plan)
    raise PlannerError(f"unknown plan node {type(plan).__name__}")


def _predicate_checker(plan: Plan) -> Callable[[tuple], bool]:
    predicate = plan.predicate
    if predicate is None:
        return lambda row: True
    table = plan.table
    position = table.column_index(predicate.column)
    column = table.columns[position]
    operator = table.catalog.operators_named(predicate.op, column.type_name)[0]
    operand = predicate.operand
    return lambda row: operator.apply(row[position], operand)


def _execute_seq_scan(plan: SeqScanPlan) -> Iterator[tuple]:
    check = _predicate_checker(plan)
    for _tid, row in plan.table.scan():
        if check(row):
            yield row


def _execute_index_scan(plan: IndexScanPlan) -> Iterator[tuple]:
    check = _predicate_checker(plan)
    predicate = plan.predicate
    assert predicate is not None
    for tid in plan.index.scan(predicate.op, predicate.operand):
        row = plan.table.fetch(tid)
        if row is not None and check(row):
            yield row


def _nn_distance_function(type_name: str) -> Callable[[Any, Any], float]:
    if type_name == "varchar":
        return lambda value, query: float(hamming(value, query))
    if type_name == "point":
        return euclidean
    if type_name == "lseg":
        return lambda value, query: point_to_segment_distance(query, value)
    raise PlannerError(f"no NN distance function for type {type_name!r}")


def _execute_nn(plan: Plan) -> Iterator[tuple]:
    predicate = plan.predicate
    assert predicate is not None
    if isinstance(plan, NNIndexScanPlan):
        for tid in plan.index.nn_scan(predicate.operand):
            row = plan.table.fetch(tid)
            if row is not None:
                yield row
        return
    # Fallback: materialize and sort by distance (no NN-capable index).
    table = plan.table
    position = table.column_index(predicate.column)
    column = table.columns[position]
    distance = _nn_distance_function(column.type_name)
    rows = [
        (distance(row[position], predicate.operand), tid, row)
        for tid, row in table.scan()
    ]
    rows.sort(key=lambda item: (item[0], item[1]))
    for _d, _tid, row in rows:
        yield row
