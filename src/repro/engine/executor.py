"""Plan execution: turn an access path into a row stream.

Index scans resolve TIDs through the heap and re-check the predicate with
the operator procedure (harmless for our exact indexes, and it keeps the
executor correct if a lossy index is ever registered). NN plans yield rows
in non-decreasing distance order; the caller applies LIMIT by slicing the
iterator — the paper's "number of NNs controlled by the application using
cursors".

Resilience: an index scan that hits corruption (a failed page checksum or a
broken structural invariant) does not fail the query. The executor records
the incident, quarantines the index so the planner stops choosing it, and
finishes the query with a sequential scan — PostgreSQL operators call this
pattern "degrade and REINDEX later".

Batching (PR 8): the primary read path is batch-at-a-time.
:func:`execute_plan_batches` yields lists of up to ``SETTINGS.batch_size``
rows; visibility and predicate filtering run as list comprehensions over
whole heap pages / TID chunks instead of per-row generator resumes, which
is where the tuple-at-a-time path spent most of its Python overhead.
:func:`execute_plan` is a thin flattening wrapper, so every existing
caller gets the batched engine transparently; the original per-row
implementation survives as :func:`execute_plan_rows` — it is the perfgate
baseline and the differential oracle's reference semantics (batch output
must equal it row-for-row for every batch size, including 1).
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Iterator

from repro.engine.planner import (
    IndexScanPlan,
    NNIndexScanPlan,
    NNSortScanPlan,
    Plan,
    SeqScanPlan,
)
from repro.errors import IndexCorruptionError, PageChecksumError, PlannerError
from repro.geometry.distance import (
    euclidean,
    hamming,
    point_to_segment_distance,
)
from repro.resilience.incidents import INCIDENTS
from repro.settings import SETTINGS


#: Signature of the optional degradation callback: (index, incident kind,
#: exception). Called after the incident is recorded and the index
#: quarantined, before the sequential-scan fallback starts.
OnDegrade = Callable[[Any, str, Exception], None]


def _quarantine(
    index: Any,
    incident: str,
    exc: Exception,
    on_degrade: OnDegrade | None = None,
) -> None:
    """Record the incident, quarantine the index, and purge its node cache.

    Purging is what keeps the deserialized-node cache honest under
    corruption: no live node object from the poisoned index survives into
    later scans (the planner also stops choosing it, but belt-and-braces).
    ``on_degrade`` lets a caller observe the degradation in-band — the
    replication read router uses it to flag a standby whose index went bad
    for resync instead of silently serving it degraded forever.
    """
    INCIDENTS.record(incident, index.name, exc)
    index.quarantined = True
    purge = getattr(index, "purge_node_cache", None)
    if purge is not None:
        purge()
    if on_degrade is not None:
        on_degrade(index, incident, exc)


def execute_plan(
    plan: Plan, on_degrade: OnDegrade | None = None
) -> Iterator[tuple]:
    """Yield the rows the plan produces, in plan order.

    ``on_degrade`` (optional) is invoked if an index scan hits corruption
    mid-flight and the executor falls back to the heap.

    This is now a flattening wrapper over :func:`execute_plan_batches`:
    rows come out one at a time, but are produced batch-at-a-time inside.
    """
    batches = execute_plan_batches(plan, on_degrade)  # dispatch eagerly
    return (row for batch in batches for row in batch)


def execute_plan_batches(
    plan: Plan,
    on_degrade: OnDegrade | None = None,
    batch_size: int | None = None,
) -> Iterator[list[tuple]]:
    """Yield the plan's rows as non-empty lists of ≤ ``batch_size`` rows.

    Concatenating the batches reproduces :func:`execute_plan_rows` output
    exactly — same rows, same order, same degradation behaviour — for any
    ``batch_size`` ≥ 1 (the differential oracle sweeps this). ``None``
    resolves to ``SETTINGS.batch_size`` at call time.
    """
    if batch_size is None:
        batch_size = SETTINGS.batch_size
    if batch_size < 1:
        raise PlannerError(f"batch_size must be >= 1, got {batch_size}")
    if isinstance(plan, (NNIndexScanPlan, NNSortScanPlan)):
        return _nn_batches(plan, on_degrade, batch_size)
    if isinstance(plan, IndexScanPlan):
        return _index_scan_batches(plan, on_degrade, batch_size)
    if isinstance(plan, SeqScanPlan):
        return _seq_scan_batches(plan, batch_size)
    raise PlannerError(f"unknown plan node {type(plan).__name__}")


def execute_plan_rows(
    plan: Plan, on_degrade: OnDegrade | None = None
) -> Iterator[tuple]:
    """The original tuple-at-a-time executor, one generator resume per row.

    Kept as the perfgate baseline and as the reference semantics the
    batched path is differentially tested against; production callers go
    through :func:`execute_plan`.
    """
    if isinstance(plan, (NNIndexScanPlan, NNSortScanPlan)):
        return _execute_nn(plan, on_degrade)
    if isinstance(plan, IndexScanPlan):
        return _execute_index_scan(plan, on_degrade)
    if isinstance(plan, SeqScanPlan):
        return _execute_seq_scan(plan)
    raise PlannerError(f"unknown plan node {type(plan).__name__}")


def _predicate_checker(plan: Plan) -> Callable[[tuple], bool]:
    predicate = plan.predicate
    if predicate is None:
        return lambda row: True
    table = plan.table
    position = table.column_index(predicate.column)
    column = table.columns[position]
    operator = table.catalog.operators_named(predicate.op, column.type_name)[0]
    operand = predicate.operand
    return lambda row: operator.apply(row[position], operand)


def _plan_snapshot(plan: Plan) -> Any:
    """Resolve the snapshot this plan reads through, exactly once.

    A plan stamped by an open transaction carries that transaction's
    snapshot; otherwise take a fresh statement snapshot now, so every
    heap fetch of this one execution — including the degradation
    fallback — sees the same database state.
    """
    if plan.snapshot is not None:
        return plan.snapshot
    return plan.table.current_snapshot()


def _execute_seq_scan(plan: SeqScanPlan) -> Iterator[tuple]:
    check = _predicate_checker(plan)
    snapshot = _plan_snapshot(plan)
    for _tid, row in plan.table.scan(snapshot):
        if check(row):
            yield row


def _execute_index_scan(
    plan: IndexScanPlan, on_degrade: OnDegrade | None = None
) -> Iterator[tuple]:
    check = _predicate_checker(plan)
    predicate = plan.predicate
    assert predicate is not None
    snapshot = _plan_snapshot(plan)
    emitted: set[Any] = set()
    tids = plan.index.scan(predicate.op, predicate.operand)
    while True:
        try:
            tid = next(tids)
        except StopIteration:
            return
        except (IndexCorruptionError, PageChecksumError) as exc:
            _quarantine(plan.index, "index-scan-degraded", exc, on_degrade)
            break
        # Index entries point at every heap version; the snapshot-aware
        # fetch filters out the invisible ones (PostgreSQL's division of
        # labour between the access method and the heap).
        row = plan.table.fetch(tid, snapshot)
        if row is not None and check(row):
            emitted.add(tid)
            yield row
    # Graceful degradation: the index is unreadable mid-scan, but the heap
    # is fine — finish with a sequential scan under the SAME snapshot,
    # skipping rows already produced, so the query still returns a
    # complete, correct result.
    for tid, row in plan.table.scan(snapshot):
        if tid in emitted:
            continue
        if check(row):
            yield row


# -- batch-at-a-time scan nodes -------------------------------------------------


def _rechunk(
    pending: list[tuple], batch_size: int
) -> Iterator[list[tuple]]:
    """Drain full batches off the front of ``pending`` (in place)."""
    while len(pending) >= batch_size:
        yield pending[:batch_size]
        del pending[:batch_size]


def _chunked(rows: Iterator[tuple], batch_size: int) -> Iterator[list[tuple]]:
    """Slice a row iterator into non-empty fixed-size batches."""
    while True:
        batch = list(islice(rows, batch_size))
        if not batch:
            return
        yield batch


def _seq_scan_batches(
    plan: SeqScanPlan, batch_size: int
) -> Iterator[list[tuple]]:
    """Seq scan: one visibility+predicate comprehension per heap page.

    Heap pages rarely match ``batch_size`` exactly, so matched rows are
    re-chunked through a pending buffer; row order stays physical order.
    """
    snapshot = _plan_snapshot(plan)
    check = _predicate_checker(plan)
    unfiltered = plan.predicate is None
    pending: list[tuple] = []
    for page in plan.table.scan_batches(snapshot):
        if unfiltered:
            pending.extend([row for _tid, row in page])
        else:
            pending.extend([row for _tid, row in page if check(row)])
        yield from _rechunk(pending, batch_size)
    if pending:
        yield pending


def _pull_tid_chunk(
    tids: Iterator[Any],
    batch_size: int,
    plan: Plan,
    incident: str,
    on_degrade: OnDegrade | None,
) -> tuple[list[Any], bool]:
    """Pull up to ``batch_size`` TIDs; returns (chunk, degraded).

    Corruption raised mid-chunk quarantines the index and returns the
    TIDs pulled so far — they are still valid results and are resolved
    before the caller switches to the heap fallback.
    """
    chunk: list[Any] = []
    try:
        for tid in islice(tids, batch_size):
            chunk.append(tid)
    except (IndexCorruptionError, PageChecksumError) as exc:
        _quarantine(plan.index, incident, exc, on_degrade)
        return chunk, True
    return chunk, False


def _fallback_seq_batches(
    plan: Plan,
    snapshot: Any,
    emitted: set[Any],
    check: Callable[[tuple], bool],
    batch_size: int,
) -> Iterator[list[tuple]]:
    """Finish a degraded index scan from the heap, skipping emitted TIDs."""
    pending: list[tuple] = []
    for page in plan.table.scan_batches(snapshot):
        pending.extend(
            row for tid, row in page if tid not in emitted and check(row)
        )
        yield from _rechunk(pending, batch_size)
    if pending:
        yield pending


def _index_scan_batches(
    plan: IndexScanPlan,
    on_degrade: OnDegrade | None,
    batch_size: int,
) -> Iterator[list[tuple]]:
    """Index scan: TID chunks resolved through one fetch_many per batch."""
    check = _predicate_checker(plan)
    predicate = plan.predicate
    assert predicate is not None
    snapshot = _plan_snapshot(plan)
    emitted: set[Any] = set()
    tids = plan.index.scan(predicate.op, predicate.operand)
    while True:
        chunk, degraded = _pull_tid_chunk(
            tids, batch_size, plan, "index-scan-degraded", on_degrade
        )
        batch: list[tuple] = []
        # The index may point at invisible versions and (for lossy
        # opclasses) false positives — fetch_many applies visibility,
        # then the operator recheck runs over the resolved array.
        for tid, row in plan.table.fetch_many(chunk, snapshot):
            if check(row):
                emitted.add(tid)
                batch.append(row)
        if batch:
            yield batch
        if degraded:
            break
        if len(chunk) < batch_size:
            return
    yield from _fallback_seq_batches(plan, snapshot, emitted, check, batch_size)


def _nn_batches(
    plan: Plan,
    on_degrade: OnDegrade | None,
    batch_size: int,
) -> Iterator[list[tuple]]:
    """NN scan: distance-ordered TID chunks; batching preserves the order."""
    predicate = plan.predicate
    assert predicate is not None
    snapshot = _plan_snapshot(plan)
    if isinstance(plan, NNIndexScanPlan):
        emitted: set[Any] = set()
        tids = plan.index.nn_scan(predicate.operand)
        while True:
            chunk, degraded = _pull_tid_chunk(
                tids, batch_size, plan, "nn-scan-degraded", on_degrade
            )
            resolved = plan.table.fetch_many(chunk, snapshot)
            emitted.update(tid for tid, _row in resolved)
            if resolved:
                yield [row for _tid, row in resolved]
            if degraded:
                break
            if len(chunk) < batch_size:
                return
        yield from _chunked(
            _nn_sort_scan(plan, skip=emitted, snapshot=snapshot), batch_size
        )
        return
    yield from _chunked(_nn_sort_scan(plan, snapshot=snapshot), batch_size)


def _nn_distance_function(type_name: str) -> Callable[[Any, Any], float]:
    if type_name == "varchar":
        return lambda value, query: float(hamming(value, query))
    if type_name == "point":
        return euclidean
    if type_name == "lseg":
        return lambda value, query: point_to_segment_distance(query, value)
    raise PlannerError(f"no NN distance function for type {type_name!r}")


def _execute_nn(
    plan: Plan, on_degrade: OnDegrade | None = None
) -> Iterator[tuple]:
    predicate = plan.predicate
    assert predicate is not None
    snapshot = _plan_snapshot(plan)
    if isinstance(plan, NNIndexScanPlan):
        emitted: set[Any] = set()
        tids = plan.index.nn_scan(predicate.operand)
        while True:
            try:
                tid = next(tids)
            except StopIteration:
                return
            except (IndexCorruptionError, PageChecksumError) as exc:
                _quarantine(plan.index, "nn-scan-degraded", exc, on_degrade)
                break
            row = plan.table.fetch(tid, snapshot)
            if row is not None:
                emitted.add(tid)
                yield row
        # Graceful degradation, mirroring _execute_index_scan: the index
        # died mid-stream, but every row it already produced was one of the
        # true nearest neighbours, so finishing with the sort-scan path —
        # skipping those TIDs — continues the stream in non-decreasing
        # distance order with no duplicates and no gaps.
        yield from _nn_sort_scan(plan, skip=emitted, snapshot=snapshot)
        return
    # Fallback: materialize and sort by distance (no NN-capable index).
    yield from _nn_sort_scan(plan, snapshot=snapshot)


def _nn_sort_scan(
    plan: Plan, skip: set[Any] | None = None, snapshot: Any = None
) -> Iterator[tuple]:
    """Heap-scan NN: materialize distances and sort (``skip`` = TIDs done)."""
    predicate = plan.predicate
    assert predicate is not None
    table = plan.table
    position = table.column_index(predicate.column)
    column = table.columns[position]
    distance = _nn_distance_function(column.type_name)
    if snapshot is None:
        snapshot = _plan_snapshot(plan)
    rows = [
        (distance(row[position], predicate.operand), tid, row)
        for tid, row in table.scan(snapshot)
        if skip is None or tid not in skip
    ]
    rows.sort(key=lambda item: (item[0], item[1]))
    for _d, _tid, row in rows:
        yield row
