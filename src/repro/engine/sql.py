"""Mini-SQL front end covering the paper's Table 6 statement shapes.

Supported statements (case-insensitive keywords, one statement per call)::

    CREATE TABLE word_data (name VARCHAR(50), id INT);
    CREATE INDEX sp_trie_index ON word_data USING SP_GiST (name SP_GiST_trie);
    INSERT INTO word_data VALUES ('random', 1);
    SELECT * FROM word_data WHERE name = 'random';
    SELECT name, id FROM word_data WHERE name = 'random';
    SELECT COUNT(*) FROM word_data WHERE name #= 'ran';
    SELECT * FROM word_data WHERE name ?= 'r?nd?m' LIMIT 10;
    SELECT * FROM point_data WHERE p ^ '(0,0,5,5)';
    SELECT * FROM point_data WHERE p @@ '(1,2)' LIMIT 8;   -- NN via cursor/LIMIT
    EXPLAIN SELECT * FROM word_data WHERE name = 'random';
    DELETE FROM word_data WHERE name = 'random';
    UPDATE word_data SET name = 'chosen' WHERE id = 1;
    BEGIN; COMMIT; ROLLBACK;                   -- snapshot-isolation txns
    VACUUM word_data;                          -- reclaim dead versions
    DROP INDEX sp_trie_index ON word_data;
    DROP TABLE word_data;
    CHECK INDEX sp_trie_index;                 -- amcheck-style verification
    REPACK INDEX sp_trie_index;                -- online clustering repack
    DECLARE c CURSOR FOR SELECT * FROM word_data WHERE name #= 'ran';
    FETCH 10 FROM c; FETCH ALL FROM c; CLOSE c;   -- batch pagination
    SELECT * FROM repro_incidents();           -- the resilience incident log
    SELECT * FROM repro_heap_stats('word_data');  -- heap version accounting

Literals are bound using the column's catalog type: varchar literals are
quoted strings with SQL-standard doubled-quote escapes (``'O''Brien'``),
points parse as ``(x,y)``, boxes as ``(x1,y1,x2,y2)``, segments as
``[(x1,y1),(x2,y2)]``. The operand type of an operator (e.g. ``^`` takes a
box although the column is a point) comes from the operator's catalog row,
exactly as PostgreSQL binds ``leftarg``/``rightarg``.

Transactions: every DML statement outside ``BEGIN``/``COMMIT`` autocommits.
Inside a transaction block, all statements read through the snapshot taken
at ``BEGIN`` (plus the transaction's own writes); ``ROLLBACK`` makes every
write vanish. A write-write conflict (:class:`~repro.errors.TxnError`)
aborts the whole block, PostgreSQL's "could not serialize" behaviour.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Callable, Iterable

from repro.engine.catalog import SystemCatalog, default_catalog
from repro.engine.executor import execute_plan_batches
from repro.engine.planner import NN_OPERATOR, Plan, Predicate, plan_query
from repro.engine.table import Column, Table
from repro.engine.txn import Snapshot, Transaction, TransactionManager
from repro.errors import SQLError, TxnAbortedError, TxnError
from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment
from repro.settings import SETTINGS
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


class WouldBlock(Exception):
    """Internal control-flow signal from a session's row-lock hook.

    Raised by :attr:`SessionState.row_locker` when a TID lock cannot be
    granted immediately. Not an error: the SQL layer unwinds the statement
    *without* aborting an explicit transaction block, the server layer
    waits on the lock (with deadlock detection and timeouts) outside the
    engine mutex, and the statement is retried. Never surfaces to clients.
    """

    def __init__(self, key: tuple) -> None:
        super().__init__(f"lock {key!r} would block")
        self.key = key


class Cursor:
    """One open server-side cursor: batch-wise pagination over a SELECT.

    The cursor owns a stream of already-projected row *batches* — the same
    batches the executor produced — plus a small carry buffer so FETCH
    counts need not align with batch boundaries. Cursors declared inside a
    transaction block stream lazily (2PL table locks protect the scan);
    cursors declared in autocommit mode are materialized at DECLARE (the
    ``WITH HOLD`` behaviour), so they stay valid across later statements.
    """

    def __init__(
        self, name: str, batches: Iterable[list[tuple]], held: bool
    ) -> None:
        self.name = name
        self.held = held
        self._batches = iter(batches)
        self._pending: list[tuple] = []
        self._exhausted = False

    def fetch(self, count: int | None) -> list[tuple]:
        """Up to ``count`` rows; ``None`` = one executor batch, ``-1`` = all."""
        if count is None:
            count = SETTINGS.batch_size
        out: list[tuple] = []
        while count < 0 or len(self._pending) < count:
            if self._exhausted:
                break
            try:
                self._pending.extend(next(self._batches))
            except StopIteration:
                self._exhausted = True
        if count < 0:
            out, self._pending = self._pending, []
            return out
        out = self._pending[:count]
        del self._pending[:count]
        return out

    def close(self) -> None:
        """Release the underlying batch iterator and drop buffered rows."""
        self._batches = iter(())
        self._pending = []
        self._exhausted = True


@dataclass
class SessionState:
    """One session's transaction state over a shared :class:`Database`.

    The database embeds a default instance so single-session callers keep
    the historical ``db.execute(sql)`` API; the server layer creates one
    per connected session and passes it to every ``execute`` call, which
    is what lets many sessions interleave transactions over one cluster.
    """

    #: The open BEGIN block, if any (None = autocommit mode).
    current: Transaction | None = None
    #: Tables written by the open block, for eager pruning at COMMIT.
    block_tables: set[str] = field(default_factory=set)
    #: True once a statement inside the block failed: the transaction is
    #: aborted and only COMMIT/ROLLBACK (both ending it as a rollback)
    #: are accepted, PostgreSQL's "current transaction is aborted".
    failed: bool = False
    #: :attr:`Database.epoch` at BEGIN; a mismatch means the underlying
    #: cluster was rebound (failover) and the block must abort.
    epoch: int = 0
    #: Server hook: called as ``row_locker(table_name, tid)`` for every
    #: row a DML statement is about to claim. May raise
    #: :class:`WouldBlock` (statement retried after waiting) or a
    #: transaction-aborting lock error.
    row_locker: Callable[[str, Any], None] | None = None
    #: Server hook: called periodically during long scans/statements;
    #: raises StatementTimeoutError past the statement deadline.
    deadline_check: Callable[[], None] | None = None
    #: Open cursors by (lower-cased) name. Cursors declared inside a
    #: transaction block die with it; held (autocommit) cursors survive
    #: until CLOSE.
    cursors: dict[str, "Cursor"] = field(default_factory=dict)

    def drop_block_cursors(self) -> None:
        """Close every non-held cursor (transaction block ended)."""
        for name in [n for n, c in self.cursors.items() if not c.held]:
            self.cursors[name].close()
            del self.cursors[name]

_TYPE_ALIASES = {
    "varchar": "varchar",
    "text": "varchar",
    "char": "varchar",
    "int": "int",
    "integer": "int",
    "bigint": "int",
    "float": "float",
    "real": "float",
    "double": "float",
    "point": "point",
    "lseg": "lseg",
    "box": "box",
}

_CREATE_TABLE = re.compile(
    r"^\s*create\s+table\s+(\w+)\s*\((.*)\)\s*;?\s*$", re.I | re.S
)
_CREATE_INDEX = re.compile(
    r"^\s*create\s+index\s+(\w+)\s+on\s+(\w+)\s+using\s+(\w+)\s*"
    r"\(\s*(\w+)(?:\s+(\w+))?\s*\)\s*;?\s*$",
    re.I,
)
_INSERT = re.compile(
    r"^\s*insert\s+into\s+(\w+)\s+values\s*(\(.*\))\s*;?\s*$", re.I | re.S
)
#: One SQL literal: a quoted string with SQL-standard doubled-quote
#: escapes (``'O''Brien'``), or any bare token. The quoted branch must
#: come first so an escaped literal is consumed whole instead of the
#: bare branch grabbing a fragment of it; the bare branch stops at ``;``
#: so ``WHERE id = 1;`` binds ``1``, not ``1;``.
_LITERAL = r"'(?:[^']|'')*'|[^\s;]+"
_SELECT = re.compile(
    r"^\s*select\s+(\*|count\(\*\)|[\w]+(?:\s*,\s*[\w]+)*)\s+from\s+(\w+)"
    rf"(?:\s+where\s+(\w+)\s*(\S+)\s*({_LITERAL}))?"
    r"(?:\s+limit\s+(\d+))?\s*;?\s*$",
    re.I,
)
_DELETE = re.compile(
    r"^\s*delete\s+from\s+(\w+)\s+where\s+(\w+)\s*(\S+)\s*"
    rf"({_LITERAL})\s*;?\s*$",
    re.I,
)
_UPDATE = re.compile(
    rf"^\s*update\s+(\w+)\s+set\s+(\w+)\s*=\s*({_LITERAL})"
    rf"\s+where\s+(\w+)\s*(\S+)\s*({_LITERAL})\s*;?\s*$",
    re.I,
)
_BEGIN = re.compile(r"^\s*begin(?:\s+transaction)?\s*;?\s*$", re.I)
_COMMIT = re.compile(r"^\s*(?:commit|end)(?:\s+transaction)?\s*;?\s*$", re.I)
_ROLLBACK = re.compile(r"^\s*rollback(?:\s+transaction)?\s*;?\s*$", re.I)
_VACUUM = re.compile(r"^\s*vacuum\s+(\w+)\s*;?\s*$", re.I)
_DROP_INDEX = re.compile(
    r"^\s*drop\s+index\s+(\w+)\s+on\s+(\w+)\s*;?\s*$", re.I
)
_DROP_TABLE = re.compile(r"^\s*drop\s+table\s+(\w+)\s*;?\s*$", re.I)
_ANALYZE = re.compile(r"^\s*analyze\s+(\w+)\s*;?\s*$", re.I)
_CHECK_INDEX = re.compile(r"^\s*check\s+index\s+(\w+)\s*;?\s*$", re.I)
_REPACK_INDEX = re.compile(r"^\s*repack\s+index\s+(\w+)\s*;?\s*$", re.I)
_DECLARE_CURSOR = re.compile(
    r"^\s*declare\s+(\w+)\s+cursor\s+for\s+(select\s.*)$", re.I | re.S
)
_FETCH = re.compile(
    r"^\s*fetch\s+(?:(\d+|all)\s+)?(?:from\s+)?(\w+)\s*;?\s*$", re.I
)
_CLOSE = re.compile(r"^\s*close\s+(\w+)\s*;?\s*$", re.I)
_SELECT_INCIDENTS = re.compile(
    r"^\s*select\s+\*\s+from\s+repro_incidents\s*\(\s*\)\s*;?\s*$", re.I
)
_SELECT_HEAP_STATS = re.compile(
    r"^\s*select\s+\*\s+from\s+repro_heap_stats\s*\(\s*'(\w+)'\s*\)\s*;?\s*$",
    re.I,
)
_EXPLAIN_ANALYZE = re.compile(r"^\s*explain\s+analyze\s+(.*)$", re.I | re.S)
_EXPLAIN = re.compile(r"^\s*explain\s+(.*)$", re.I | re.S)


class Database:
    """A catalog, a buffer pool, and a set of tables — one "cluster".

    ``execute()`` parses and runs one statement, returning rows for SELECT,
    a plan description for EXPLAIN, and a status string for DDL/DML.
    """

    def __init__(
        self,
        buffer: BufferPool | None = None,
        catalog: SystemCatalog | None = None,
        buffer_capacity: int = 256,
    ) -> None:
        self.buffer = buffer or BufferPool(DiskManager(), capacity=buffer_capacity)
        self.catalog = catalog or default_catalog()
        self.tables: dict[str, Table] = {}
        #: One transaction manager per cluster; every table shares it.
        self.txn = TransactionManager()
        #: Bumped whenever the underlying cluster is rebound (the
        #: replicated façade bumps it at failover); open blocks started
        #: under an older epoch are fenced off and aborted.
        self.epoch = 0
        #: The embedded default session for single-session callers.
        self._session = SessionState()

    # -- public API -----------------------------------------------------------------

    def execute(self, sql: str, session: SessionState | None = None) -> Any:
        """Run one SQL statement; see the module docstring for the dialect.

        ``session`` carries per-session transaction state; omitted, the
        database's embedded default session is used (the single-session
        API every pre-server caller keeps).
        """
        if session is None:
            session = self._session
        if session.current is not None and session.epoch != self.epoch:
            # The cluster was rebound under an open block (failover): the
            # block's transaction manager is gone, so the block is dead.
            session.current = None
            session.failed = True
            session.block_tables = set()
            session.drop_block_cursors()
        if session.failed:
            if _COMMIT.match(sql) or _ROLLBACK.match(sql):
                session.failed = False
                session.current = None
                session.block_tables = set()
                return "ROLLBACK"
            raise TxnAbortedError(
                "current transaction is aborted, commands ignored until "
                "end of transaction block"
            )
        try:
            return self._dispatch(sql, session)
        except WouldBlock:
            raise  # control flow, not a failure: the statement is retried
        except Exception:
            if session.current is not None:
                # Any error inside an explicit block aborts the whole
                # block (PostgreSQL's rule); the DML paths already did
                # this via _abort_write, this catches the rest (failed
                # SELECT/EXPLAIN/parse/bind errors).
                txn = session.current
                session.current = None
                session.failed = True
                session.block_tables = set()
                session.drop_block_cursors()
                if txn.is_open:
                    self.txn.abort(txn)
            raise

    def _dispatch(self, sql: str, session: SessionState) -> Any:
        match = _EXPLAIN_ANALYZE.match(sql)
        if match:
            return self._explain(match.group(1), execute=True)
        match = _EXPLAIN.match(sql)
        if match:
            return self._explain(match.group(1))
        match = _CREATE_TABLE.match(sql)
        if match:
            return self._create_table(match.group(1), match.group(2))
        match = _CREATE_INDEX.match(sql)
        if match:
            return self._create_index(*match.groups())
        match = _INSERT.match(sql)
        if match:
            return self._insert(match.group(1), match.group(2), session)
        match = _BEGIN.match(sql)
        if match:
            return self._begin(session)
        match = _COMMIT.match(sql)
        if match:
            return self._commit(session)
        match = _ROLLBACK.match(sql)
        if match:
            return self._rollback(session)
        match = _VACUUM.match(sql)
        if match:
            return self._vacuum(match.group(1), session)
        match = _CHECK_INDEX.match(sql)
        if match:
            return self._check_index(match.group(1))
        match = _REPACK_INDEX.match(sql)
        if match:
            return self._repack_index(match.group(1), session)
        match = _DECLARE_CURSOR.match(sql)
        if match:
            return self._declare_cursor(match.group(1), match.group(2), session)
        match = _FETCH.match(sql)
        if match:
            return self._fetch_cursor(match.group(1), match.group(2), session)
        match = _CLOSE.match(sql)
        if match:
            return self._close_cursor(match.group(1), session)
        match = _SELECT_INCIDENTS.match(sql)
        if match:
            return self._select_incidents()
        match = _SELECT_HEAP_STATS.match(sql)
        if match:
            return self.table(match.group(1)).heap_stats()
        match = _SELECT.match(sql)
        if match:
            return list(self._select(*match.groups(), session=session))
        match = _DELETE.match(sql)
        if match:
            return self._delete(*match.groups(), session=session)
        match = _UPDATE.match(sql)
        if match:
            return self._update(*match.groups(), session=session)
        match = _DROP_INDEX.match(sql)
        if match:
            return self._drop_index(match.group(1), match.group(2))
        match = _DROP_TABLE.match(sql)
        if match:
            return self._drop_table(match.group(1))
        match = _ANALYZE.match(sql)
        if match:
            self.table(match.group(1)).analyze()
            return f"ANALYZE {match.group(1)}"
        raise SQLError(f"cannot parse statement: {sql!r}")

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SQLError(f"unknown table {name!r}") from None

    # -- DDL -------------------------------------------------------------------------

    def _create_table(self, name: str, column_spec: str) -> str:
        if name.lower() in self.tables:
            raise SQLError(f"table {name!r} already exists")
        columns = []
        for part in self._split_top_level(column_spec):
            tokens = part.strip().split()
            if len(tokens) < 2:
                raise SQLError(f"bad column definition: {part!r}")
            col_name = tokens[0]
            raw_type = re.sub(r"\(.*\)", "", tokens[1]).lower()
            type_name = _TYPE_ALIASES.get(raw_type)
            if type_name is None:
                raise SQLError(f"unknown column type {tokens[1]!r}")
            columns.append(Column(col_name, type_name))
        self.tables[name.lower()] = Table(
            name, columns, self.buffer, self.catalog, txn=self.txn
        )
        return f"CREATE TABLE {name}"

    def _create_index(
        self,
        index_name: str,
        table_name: str,
        using: str,
        column_name: str,
        opclass_name: str | None,
    ) -> str:
        table = self.table(table_name)
        table.create_index(
            index_name, column_name, using=using, opclass_name=opclass_name
        )
        return f"CREATE INDEX {index_name}"

    def _check_index(self, index_name: str) -> str:
        """``CHECK INDEX <name>``: run the amcheck-style verifier.

        Finds the index by name across all tables, runs
        :func:`repro.resilience.check.spgist_check` against its structure,
        and returns the one-line report. Problems are *reported*, not
        raised — mirroring ``amcheck``, which leaves acting on a bad index
        to the operator (the executor quarantines on its own when a scan
        actually trips).
        """
        from repro.resilience.check import spgist_check

        _table, index = self.find_index(index_name)
        if index.access_method != "sp_gist":
            raise SQLError(
                f"CHECK INDEX supports SP-GiST indexes; {index_name!r} "
                f"uses {index.access_method!r}"
            )
        return spgist_check(index.structure).describe()

    def find_index(self, index_name: str) -> tuple[Table, Any]:
        """Locate an index by name across all tables: ``(table, index)``.

        Public because the server's lock classifier needs the owning
        table of a ``REPACK INDEX`` statement to take the right table
        lock.
        """
        for table in self.tables.values():
            index = table.indexes.get(index_name)
            if index is not None:
                return table, index
        raise SQLError(f"unknown index {index_name!r}")

    def _repack_index(self, index_name: str, session: SessionState) -> str:
        """``REPACK INDEX <name>``: online re-cluster of degraded subtrees.

        A maintenance statement in the VACUUM mould: refused inside a
        transaction block, commits through the maintenance hook so the
        replicated façade ships the moved pages to standbys. The repack
        itself runs in bounded subtree steps (see
        :meth:`repro.core.tree.SPGiSTIndex.repack_online`); between steps
        the structure is always consistent, which is what makes the
        server's short-lock-step scheduling and kill-anywhere recovery
        safe.
        """
        if session.current is not None:
            raise SQLError("REPACK INDEX cannot run inside a transaction block")
        _table, index = self.find_index(index_name)
        if index.access_method != "sp_gist":
            raise SQLError(
                f"REPACK INDEX supports SP-GiST indexes; {index_name!r} "
                f"uses {index.access_method!r}"
            )
        stats = index.structure.repack_online()
        self._on_txn_commit(None)
        return (
            f"REPACK INDEX {index_name}: {stats.subtrees_repacked} subtrees, "
            f"{stats.nodes_moved} nodes moved, {stats.pages_freed} pages "
            f"freed; fill {stats.fill_before:.2f} -> {stats.fill_after:.2f}"
        )

    # -- cursors ---------------------------------------------------------------------

    def _declare_cursor(
        self, name: str, inner_sql: str, session: SessionState
    ) -> str:
        """``DECLARE <name> CURSOR FOR SELECT ...``: open a cursor.

        Inside a transaction block the cursor streams lazily through the
        block's snapshot; in autocommit mode it is materialized now (the
        ``WITH HOLD`` behaviour), so later statements — even index
        maintenance — cannot invalidate it.
        """
        key = name.lower()
        if key in session.cursors:
            raise SQLError(f"cursor {name!r} already exists")
        match = _SELECT.match(inner_sql)
        if not match:
            raise SQLError(
                f"DECLARE CURSOR supports only SELECT, got: {inner_sql!r}"
            )
        batches = self._select_batches(*match.groups(), session=session)
        held = session.current is None
        if held:
            batches = list(batches)
        session.cursors[key] = Cursor(key, batches, held)
        return f"DECLARE {name}"

    def _fetch_cursor(
        self, count: str | None, name: str, session: SessionState
    ) -> list[tuple]:
        """``FETCH [n|ALL] [FROM] <name>``: the next page of rows.

        Without a count, one executor batch (``SETTINGS.batch_size`` rows)
        is returned — the cheap-pagination contract: the server hands out
        exactly the batches the executor produced.
        """
        cursor = session.cursors.get(name.lower())
        if cursor is None:
            raise SQLError(f"unknown cursor {name!r}")
        if count is None:
            return cursor.fetch(None)
        if count.lower() == "all":
            return cursor.fetch(-1)
        return cursor.fetch(int(count))

    def _close_cursor(self, name: str, session: SessionState) -> str:
        """``CLOSE <name>``: drop a cursor."""
        cursor = session.cursors.pop(name.lower(), None)
        if cursor is None:
            raise SQLError(f"unknown cursor {name!r}")
        cursor.close()
        return f"CLOSE {name}"

    def _select_incidents(self) -> list[tuple]:
        """``SELECT * FROM repro_incidents()``: the incident log as rows.

        A set-returning function in the PostgreSQL style: one row per
        recorded resilience incident, columns ``(kind, subject,
        error_type, detail)``.
        """
        from repro.resilience.incidents import INCIDENTS

        return [
            (i.kind, i.subject, i.error_type, i.detail)
            for i in INCIDENTS.incidents
        ]

    def _drop_index(self, index_name: str, table_name: str) -> str:
        self.table(table_name).drop_index(index_name)
        return f"DROP INDEX {index_name}"

    def _drop_table(self, name: str) -> str:
        if name.lower() not in self.tables:
            raise SQLError(f"unknown table {name!r}")
        del self.tables[name.lower()]
        return f"DROP TABLE {name}"

    # -- transaction control ---------------------------------------------------------

    def _begin(self, session: SessionState) -> str:
        if session.current is not None:
            raise SQLError("a transaction is already in progress")
        session.current = self.txn.begin()
        session.epoch = self.epoch
        session.block_tables = set()
        return "BEGIN"

    def _commit(self, session: SessionState) -> str:
        if session.current is None:
            raise SQLError("no transaction in progress")
        txn = session.current
        session.current = None
        session.drop_block_cursors()
        self.txn.commit(txn)
        self._on_txn_commit(txn)
        self._prune_after_commit(txn, session.block_tables)
        session.block_tables = set()
        return "COMMIT"

    def _rollback(self, session: SessionState) -> str:
        if session.current is None:
            raise SQLError("no transaction in progress")
        txn = session.current
        session.current = None
        session.block_tables = set()
        session.drop_block_cursors()
        self.txn.abort(txn)
        return "ROLLBACK"

    def _on_txn_commit(self, txn: Transaction | None) -> None:
        """Post-commit hook: a plain database has nothing more to do.

        The replicated façade (:class:`repro.server.ReplicatedDatabase`)
        overrides this to make the commit durable and quorum-acknowledged
        on its replica set. ``txn`` is None for maintenance commits
        (VACUUM) that mutate pages without a user transaction.
        """

    def _vacuum(self, table_name: str, session: SessionState) -> str:
        if session.current is not None:
            raise SQLError("VACUUM cannot run inside a transaction block")
        stats = self.table(table_name).vacuum()
        self._on_txn_commit(None)
        return (
            f"VACUUM {table_name}: removed {stats.versions_pruned} versions, "
            f"{stats.index_entries_pruned} index entries; truncated "
            f"{stats.pages_truncated} pages ({stats.pages} pages, "
            f"{stats.pages_needed} needed)"
        )

    def _write_txn(self, session: SessionState) -> tuple[Transaction, bool]:
        """The open block's transaction, or a fresh autocommit one."""
        if session.current is not None:
            return session.current, False
        return self.txn.begin(), True

    def _finish_write(
        self,
        txn: Transaction,
        autocommit: bool,
        table: Table,
        session: SessionState,
    ) -> None:
        """Commit an autocommit statement's transaction and eager-prune.

        Pruning right after an autocommit DELETE/UPDATE keeps the legacy
        contract — "SQL DELETE removes the index entries" — whenever no
        other transaction could still see the old versions. Interleaved
        transactions suppress it; VACUUM catches up later.
        """
        if not autocommit:
            session.block_tables.add(table.name.lower())
            return
        self.txn.commit(txn)
        self._on_txn_commit(txn)
        self._prune_after_commit(txn, {table.name.lower()})

    def _abort_write(
        self, txn: Transaction, autocommit: bool, session: SessionState
    ) -> None:
        """A statement failed mid-write: roll its transaction back.

        For an autocommit statement that aborts just the statement; for an
        explicit block the whole block enters the **aborted** state
        (PostgreSQL's behaviour on any in-block error): the transaction is
        rolled back at once, and every later statement is rejected with
        :class:`~repro.errors.TxnAbortedError` until COMMIT/ROLLBACK ends
        the block (both as a rollback).
        """
        if not autocommit:
            session.current = None
            session.failed = True
            session.block_tables = set()
            session.drop_block_cursors()
        if txn.is_open:
            self.txn.abort(txn)

    def _lock_victims(
        self, session: SessionState, table: Table, victims: list[tuple]
    ) -> None:
        """Run the session's row-lock hook over a DML statement's victims.

        Called *before* any mutation so a :class:`WouldBlock` unwind
        leaves nothing half-done; the server waits for the contested lock
        and retries the whole statement.
        """
        locker = session.row_locker
        if locker is None:
            return
        name = table.name.lower()
        for tid, _row in victims:
            locker(name, tid)

    def _prune_after_commit(
        self, txn: Transaction, table_names: set[str]
    ) -> None:
        if not txn.touched or not self.txn.quiescent():
            return
        only = set(txn.touched)
        for name in table_names:
            table = self.tables.get(name)
            if table is not None:
                table.vacuum(only_tids=only)

    # -- DML -------------------------------------------------------------------------

    def _insert(
        self, table_name: str, values_spec: str, session: SessionState
    ) -> str:
        """INSERT one row — or many: ``VALUES (...), (...), ...``.

        Multi-row statements take the batched write path
        (:meth:`Table.insert_many`), which amortizes heap appends and runs
        each index's batch insert once instead of once per row.
        """
        table = self.table(table_name)
        rows = []
        for row_spec in self._split_row_groups(values_spec):
            literals = self._split_top_level(row_spec)
            if len(literals) != len(table.columns):
                raise SQLError(
                    f"INSERT arity {len(literals)} != table arity "
                    f"{len(table.columns)}"
                )
            rows.append(
                tuple(
                    self._bind_literal(literal.strip(), column.type_name)
                    for literal, column in zip(literals, table.columns)
                )
            )
        if not rows:
            raise SQLError("INSERT requires at least one VALUES row")
        txn, autocommit = self._write_txn(session)
        try:
            if len(rows) == 1:
                table.insert(rows[0], txn=txn)
            else:
                table.insert_many(rows, txn=txn)
        except Exception:
            self._abort_write(txn, autocommit, session)
            raise
        self._finish_write(txn, autocommit, table, session)
        return f"INSERT 0 {len(rows)}"

    def _find_victims(
        self,
        table: Table,
        predicate: Predicate,
        snapshot: Snapshot,
        session: SessionState,
    ) -> list[tuple]:
        """(tid, row) pairs the predicate selects under ``snapshot``."""
        position = table.column_index(predicate.column)
        operator = table.catalog.operators_named(
            predicate.op, table.columns[position].type_name
        )[0]
        check = session.deadline_check
        interval = SETTINGS.deadline_check_interval
        victims = []
        for i, (tid, row) in enumerate(table.scan(snapshot)):
            if check is not None and i % interval == 0:
                check()
            if operator.apply(row[position], predicate.operand):
                victims.append((tid, row))
        return victims

    def _delete(
        self,
        table_name: str,
        column: str,
        op: str,
        literal: str,
        session: SessionState,
    ) -> str:
        table = self.table(table_name)
        predicate = self._bind_predicate(table, column, op, literal)
        txn, autocommit = self._write_txn(session)
        try:
            victims = self._find_victims(table, predicate, txn.snapshot, session)
            self._lock_victims(session, table, victims)
        except WouldBlock:
            # Not a failure: drop the provisional autocommit txn (nothing
            # was written) so the retried statement restarts cleanly.
            if autocommit:
                self._abort_write(txn, True, session)
            raise
        except Exception:
            self._abort_write(txn, autocommit, session)
            raise
        try:
            for tid, _row in victims:
                table.mvcc_delete(tid, txn)
        except Exception:
            self._abort_write(txn, autocommit, session)
            raise
        self._finish_write(txn, autocommit, table, session)
        return f"DELETE {len(victims)}"

    def _update(
        self,
        table_name: str,
        set_column: str,
        set_literal: str,
        column: str,
        op: str,
        literal: str,
        session: SessionState,
    ) -> str:
        """UPDATE: new versions for every matching row, one transaction.

        The old version's expiry and the new version's insert carry the
        same xid, so readers see either both or neither — the atomic
        index-maintenance fix rides on the MVCC layer.
        """
        table = self.table(table_name)
        predicate = self._bind_predicate(table, column, op, literal)
        set_position = table.column_index(set_column)
        new_value = self._bind_literal(
            set_literal.strip(), table.columns[set_position].type_name
        )
        txn, autocommit = self._write_txn(session)
        try:
            victims = self._find_victims(table, predicate, txn.snapshot, session)
            self._lock_victims(session, table, victims)
        except WouldBlock:
            if autocommit:
                self._abort_write(txn, True, session)
            raise
        except Exception:
            self._abort_write(txn, autocommit, session)
            raise
        try:
            for tid, row in victims:
                new_row = (
                    row[:set_position] + (new_value,) + row[set_position + 1:]
                )
                table.mvcc_update(tid, new_row, txn)
        except Exception:
            self._abort_write(txn, autocommit, session)
            raise
        self._finish_write(txn, autocommit, table, session)
        return f"UPDATE {len(victims)}"

    # -- queries -----------------------------------------------------------------------

    def _select(
        self,
        select_list: str,
        table_name: str,
        column: str | None,
        op: str | None,
        literal: str | None,
        limit: str | None,
        session: SessionState | None = None,
    ) -> Iterable[tuple]:
        if session is None:
            session = self._session
        return (
            row
            for batch in self._select_batches(
                select_list, table_name, column, op, literal, limit, session
            )
            for row in batch
        )

    def _select_batches(
        self,
        select_list: str,
        table_name: str,
        column: str | None,
        op: str | None,
        literal: str | None,
        limit: str | None,
        session: SessionState,
    ) -> Iterable[list[tuple]]:
        """The batched SELECT pipeline every consumer shares.

        Deadline checks, LIMIT, projection, and COUNT(*) all operate on
        whole executor batches; :meth:`_select` flattens the stream for
        the statement API, while DECLARE CURSOR paginates it as-is.
        """
        plan = self._plan_select(table_name, column, op, literal, session)
        # A LIMIT caps the batch size so lazy scans (NN especially) never
        # produce more rows than the limit needs plus a partial batch.
        batch_size = None
        if limit is not None:
            batch_size = max(1, min(SETTINGS.batch_size, int(limit)))
        batches = execute_plan_batches(plan, batch_size=batch_size)
        if session.deadline_check is not None:
            batches = self._checked_batches(batches, session.deadline_check)
        if limit is not None:
            batches = self._limited_batches(batches, int(limit))
        select_list = select_list.strip()
        if select_list == "*":
            return batches
        if select_list.lower() == "count(*)":
            return iter([[(sum(len(batch) for batch in batches),)]])
        table = self.table(table_name)
        positions = [
            table.column_index(name.strip())
            for name in select_list.split(",")
        ]
        # itemgetter projects a whole batch with no per-row bytecode; the
        # single-column case needs the 1-tuple wrapped by hand.
        if len(positions) == 1:
            project = itemgetter(positions[0])
            return ([(project(row),) for row in batch] for batch in batches)
        project = itemgetter(*positions)
        return ([project(row) for row in batch] for batch in batches)

    def _explain(self, inner_sql: str, execute: bool = False) -> str:
        from repro.engine.explain import explain, explain_analyze

        if execute:
            return explain_analyze(self, inner_sql).render()
        return explain(self, inner_sql).render()

    @staticmethod
    def _checked_batches(
        batches: Iterable[list[tuple]], check: Callable[[], None]
    ):
        """Statement-deadline checks at batch granularity.

        One check per batch replaces the old every-64-rows row counter:
        with the default batch size the cadence is comparable, and the
        check always runs before the first batch is surfaced.
        """
        check()
        for batch in batches:
            yield batch
            check()

    @staticmethod
    def _limited_batches(batches: Iterable[list[tuple]], limit: int):
        """LIMIT applied batch-wise: truncate the batch that crosses it."""
        if limit <= 0:
            return
        taken = 0
        for batch in batches:
            remaining = limit - taken
            if len(batch) >= remaining:
                yield batch[:remaining]
                return
            taken += len(batch)
            yield batch

    def _parse_select(
        self, inner_sql: str, session: SessionState | None = None
    ) -> tuple[Plan, int | None]:
        """Plan a bare SELECT, returning the access path and LIMIT (if any)."""
        match = _SELECT.match(inner_sql)
        if not match:
            raise SQLError(f"EXPLAIN supports only SELECT, got: {inner_sql!r}")
        _select_list, table_name, column, op, literal, limit = match.groups()
        plan = self._plan_select(
            table_name, column, op, literal, session or self._session
        )
        return plan, (int(limit) if limit is not None else None)

    def _plan_select(
        self,
        table_name: str,
        column: str | None,
        op: str | None,
        literal: str | None,
        session: SessionState,
    ) -> Plan:
        table = self.table(table_name)
        predicate = None
        if column is not None:
            assert op is not None and literal is not None
            predicate = self._bind_predicate(table, column, op, literal)
        plan = plan_query(table, predicate)
        if session.current is not None:
            # Inside BEGIN ... COMMIT every statement reads through the
            # snapshot taken at BEGIN (plus the block's own writes).
            plan.snapshot = session.current.snapshot
        return plan

    # -- literal binding -------------------------------------------------------------------

    def _bind_predicate(
        self, table: Table, column: str, op: str, literal: str
    ) -> Predicate:
        col = table.column(column)
        if op == NN_OPERATOR:
            # The NN query object is a value of the column's "query space":
            # a point for spatial columns, a string for varchar.
            operand_type = "point" if col.type_name in ("point", "lseg") else col.type_name
        else:
            operators = table.catalog.operators_named(op, col.type_name)
            if not operators:
                raise SQLError(
                    f"operator {op!r} is not defined for type {col.type_name!r}"
                )
            operand_type = operators[0].right_type
        return Predicate(column, op, self._bind_literal(literal, operand_type))

    @staticmethod
    def _unquote(text: str) -> str | None:
        """Strip outer quotes and fold ``''`` escapes; None if not quoted.

        Raises :class:`SQLError` on an unterminated or malformed literal
        (a stray single quote inside the body) instead of letting it fall
        through to the bare-token parsers.
        """
        if not text.startswith("'"):
            return None
        body = text[1:-1] if len(text) >= 2 and text.endswith("'") else None
        if body is None or body.replace("''", "").count("'"):
            raise SQLError(f"unterminated string literal: {text!r}")
        return body.replace("''", "'")

    @staticmethod
    def _bind_literal(literal: str, type_name: str) -> Any:
        text = literal.strip()
        unquoted = Database._unquote(text)
        quoted = unquoted is not None
        if quoted:
            text = unquoted
        if type_name == "varchar":
            if not quoted:
                raise SQLError(f"varchar literals must be quoted: {literal!r}")
            return text
        # Scalar/geometry parsers raise bare ValueError/TypeError on
        # malformed input; those are internal exceptions, so the front end
        # wraps them as typed SQLError binding failures.
        try:
            if type_name == "int":
                return int(text)
            if type_name == "float":
                return float(text)
            if type_name == "point":
                return Point.parse(text)
            if type_name == "box":
                return Box.parse(text)
            if type_name == "lseg":
                return LineSegment.parse(text)
        except (ValueError, TypeError, IndexError) as exc:
            raise SQLError(
                f"cannot bind literal {literal!r} as {type_name}: {exc}"
            ) from None
        raise SQLError(f"cannot bind literal for type {type_name!r}")

    @staticmethod
    def _split_row_groups(spec: str) -> list[str]:
        """Extract the top-level ``(...)`` groups of a VALUES list.

        Quote-aware and nesting-aware, so geometry literals like
        ``'(1,2)'`` inside a row never open a new group.
        """
        rows: list[str] = []
        depth = 0
        in_quote = False
        current: list[str] = []
        for ch in spec:
            if in_quote:
                current.append(ch)
                if ch == "'":
                    in_quote = False
                continue
            if ch == "'":
                in_quote = True
                current.append(ch)
                continue
            if ch == "(":
                depth += 1
                if depth == 1:
                    current = []
                    continue
            elif ch == ")":
                depth -= 1
                if depth < 0:
                    raise SQLError("unbalanced parentheses in VALUES list")
                if depth == 0:
                    rows.append("".join(current))
                    continue
            if depth >= 1:
                current.append(ch)
            elif not ch.isspace() and ch != ",":
                raise SQLError(
                    f"unexpected {ch!r} between VALUES rows"
                )
        if depth != 0 or in_quote:
            raise SQLError("unbalanced VALUES list")
        return rows

    @staticmethod
    def _split_top_level(spec: str) -> list[str]:
        """Split on commas not nested in parentheses/brackets/quotes."""
        parts: list[str] = []
        depth = 0
        in_quote = False
        current: list[str] = []
        for ch in spec:
            if ch == "'" and not in_quote:
                in_quote = True
            elif ch == "'" and in_quote:
                in_quote = False
            elif not in_quote:
                if ch in "([":
                    depth += 1
                elif ch in ")]":
                    depth -= 1
                elif ch == "," and depth == 0:
                    parts.append("".join(current))
                    current = []
                    continue
            current.append(ch)
        if current:
            parts.append("".join(current))
        return [part for part in (p.strip() for p in parts) if part]
