"""Operator definitions and procedures (paper Table 4).

Each operator couples a name (``=``, ``#=``, ``?=``, ``@``, ``^``, ``@=``,
``&&``) with the procedure implementing it on raw values — the functions the
paper names ``trieword_equal``, ``trieword_prefix``, ``kdpoint_equal``,
``kdpoint_inside``, etc. Scans use the procedure for sequential filtering
and index-result rechecks; the ``restrict`` field names the selectivity
estimator the planner applies (paper: ``eqsel``/``contsel``/``likesel``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import OperatorError
from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment
from repro.indexes.trie import regex_matches


@dataclass(frozen=True)
class Operator:
    """A ``pg_operator`` row: typed operator plus its procedure."""

    name: str
    left_type: str
    right_type: str
    procedure: Callable[[Any, Any], bool]
    commutator: str | None = None
    restrict: str = "eqsel"

    def apply(self, left: Any, right: Any) -> bool:
        """Evaluate ``left <op> right``."""
        try:
            return bool(self.procedure(left, right))
        except (TypeError, AttributeError) as exc:
            raise OperatorError(
                f"operator {self.name!r} cannot be applied to "
                f"({type(left).__name__}, {type(right).__name__})"
            ) from exc


# -- operator procedures (paper Table 4's `procedure =` targets) -----------------


def trieword_equal(word: str, query: str) -> bool:
    """``=`` on varchar."""
    return word == query


def trieword_prefix(word: str, prefix: str) -> bool:
    """``#=``: does ``word`` start with ``prefix``?"""
    return word.startswith(prefix)


def trieword_regex(word: str, pattern: str) -> bool:
    """``?=``: equal length with ``?`` matching any single character."""
    return regex_matches(pattern, word)


def trieword_glob(word: str, pattern: str) -> bool:
    """``*=`` (extension): glob with ``?`` and ``*``."""
    from repro.indexes.trie import glob_matches

    return glob_matches(pattern, word)


def suffix_substring(word: str, needle: str) -> bool:
    """``@=``: does ``word`` contain ``needle``?"""
    return needle in word


def kdpoint_equal(point: Point, query: Point) -> bool:
    """``@`` on point."""
    return point == query


def kdpoint_inside(point: Point, box: Box) -> bool:
    """``^``: is ``point`` inside ``box``?"""
    return box.contains_point(point)


def segment_equal(segment: LineSegment, query: LineSegment) -> bool:
    """``=`` on lseg."""
    return segment == query


def segment_overlaps(segment: LineSegment, window: Box) -> bool:
    """``&&``: does ``segment`` cross ``window``?"""
    return segment.intersects_box(window)


def generic_equal(left: Any, right: Any) -> bool:
    """``=`` on scalar types (int, float, varchar)."""
    return left == right


def generic_less(left: Any, right: Any) -> bool:
    """``<`` on ordered scalar types."""
    return left < right


def generic_less_equal(left: Any, right: Any) -> bool:
    """``<=`` on ordered scalar types."""
    return left <= right


def generic_greater(left: Any, right: Any) -> bool:
    """``>`` on ordered scalar types."""
    return left > right


def generic_greater_equal(left: Any, right: Any) -> bool:
    """``>=`` on ordered scalar types."""
    return left >= right


def builtin_operators() -> list[Operator]:
    """The operator set the paper's experiments need (Tables 3–4)."""
    return [
        Operator("=", "varchar", "varchar", trieword_equal, commutator="=",
                 restrict="eqsel"),
        Operator("#=", "varchar", "varchar", trieword_prefix,
                 restrict="likesel"),
        Operator("?=", "varchar", "varchar", trieword_regex,
                 restrict="likesel"),
        Operator("*=", "varchar", "varchar", trieword_glob,
                 restrict="likesel"),
        Operator("@=", "varchar", "varchar", suffix_substring,
                 restrict="likesel"),
        Operator("@", "point", "point", kdpoint_equal, commutator="@",
                 restrict="eqsel"),
        Operator("^", "point", "box", kdpoint_inside, restrict="contsel"),
        Operator("=", "lseg", "lseg", segment_equal, commutator="=",
                 restrict="eqsel"),
        Operator("&&", "lseg", "box", segment_overlaps, restrict="contsel"),
        Operator("=", "int", "int", generic_equal, commutator="=",
                 restrict="eqsel"),
        Operator("<", "int", "int", generic_less, restrict="scalarltsel"),
        Operator("<=", "int", "int", generic_less_equal, restrict="scalarltsel"),
        Operator(">", "int", "int", generic_greater, restrict="scalargtsel"),
        Operator(">=", "int", "int", generic_greater_equal,
                 restrict="scalargtsel"),
        Operator("<", "varchar", "varchar", generic_less,
                 restrict="scalarltsel"),
        Operator("<=", "varchar", "varchar", generic_less_equal,
                 restrict="scalarltsel"),
        Operator(">", "varchar", "varchar", generic_greater,
                 restrict="scalargtsel"),
        Operator(">=", "varchar", "varchar", generic_greater_equal,
                 restrict="scalargtsel"),
    ]
