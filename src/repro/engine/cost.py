"""Access-path cost estimation (paper Section 4.2).

The paper's ``spgistcostestimate`` produces four numbers — selectivity,
correlation, startup cost, and total cost — using PostgreSQL's generic cost
machinery. We reproduce that shape with PostgreSQL's standard cost unit
constants. Costs are in abstract "page fetch" units: sequential page reads
cost 1.0, random page reads 4.0, per-tuple CPU 0.01.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.selectivity import TableStats, estimate_selectivity

#: PostgreSQL's default cost constants (postgresql.conf).
SEQ_PAGE_COST = 1.0
RANDOM_PAGE_COST = 4.0
CPU_TUPLE_COST = 0.01
CPU_INDEX_TUPLE_COST = 0.005
CPU_OPERATOR_COST = 0.0025


@dataclass(frozen=True)
class CostEstimate:
    """The four quantities ``spgistcostestimate`` reports."""

    startup_cost: float
    total_cost: float
    selectivity: float
    correlation: float

    def __lt__(self, other: "CostEstimate") -> bool:
        return self.total_cost < other.total_cost


def seqscan_cost(heap_pages: int, row_count: int) -> CostEstimate:
    """Full heap scan: every page sequentially plus per-tuple CPU."""
    total = heap_pages * SEQ_PAGE_COST + row_count * (
        CPU_TUPLE_COST + CPU_OPERATOR_COST
    )
    return CostEstimate(0.0, total, 1.0, 0.0)


def spgist_cost_estimate(
    index_pages: int,
    index_page_height: int,
    stats: TableStats,
    heap_pages: int,
    restrict: str,
    operand: object = None,
) -> CostEstimate:
    """The ``spgistcostestimate`` analogue.

    - selectivity from the operator's restriction procedure;
    - correlation pinned to 0 — the paper: "there is no correlation between
      the index order and the underlying table order" — which makes every
      heap fetch a random page read;
    - startup: descending to the first leaf (page height random reads);
    - total: startup + the visited fraction of index pages + one random heap
      page per fetched tuple + CPU.
    """
    selectivity = estimate_selectivity(restrict, stats, operand)
    rows = selectivity * stats.row_count
    startup = index_page_height * RANDOM_PAGE_COST
    index_io = selectivity * index_pages * RANDOM_PAGE_COST
    heap_io = min(rows, float(heap_pages)) * RANDOM_PAGE_COST
    cpu = rows * (CPU_INDEX_TUPLE_COST + CPU_TUPLE_COST)
    return CostEstimate(startup, startup + index_io + heap_io + cpu,
                        selectivity, 0.0)


def btree_cost_estimate(
    index_pages: int,
    index_height: int,
    stats: TableStats,
    heap_pages: int,
    restrict: str,
    operand: object = None,
    leading_wildcard: bool = False,
) -> CostEstimate:
    """``btcostestimate`` analogue.

    B+-tree leaf order matches key order, so scanned leaf pages are
    sequential after the descent. A pattern with a leading wildcard cannot
    constrain the descent: the whole leaf level must be read (the Section 6
    sensitivity the trie does not share).
    """
    if leading_wildcard:
        selectivity = 1.0
    else:
        selectivity = estimate_selectivity(restrict, stats, operand)
    rows = estimate_selectivity(restrict, stats, operand) * stats.row_count
    startup = index_height * RANDOM_PAGE_COST
    index_io = selectivity * index_pages * SEQ_PAGE_COST
    heap_io = min(rows, float(heap_pages)) * RANDOM_PAGE_COST
    cpu = selectivity * stats.row_count * CPU_INDEX_TUPLE_COST + rows * CPU_TUPLE_COST
    return CostEstimate(startup, startup + index_io + heap_io + cpu,
                        selectivity, 1.0)


def rtree_cost_estimate(
    index_pages: int,
    index_height: int,
    stats: TableStats,
    heap_pages: int,
    restrict: str,
    operand: object = None,
) -> CostEstimate:
    """``rtcostestimate`` analogue — same shape as SP-GiST (no order)."""
    return spgist_cost_estimate(
        index_pages, index_height, stats, heap_pages, restrict, operand
    )
