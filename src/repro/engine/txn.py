"""MVCC transactions: xids, snapshots, and the commit log (``clog``).

The paper defers concurrency control to the host system (Eltabakh et al.,
ICDE 2006, §3): SP-GiST lives inside PostgreSQL's transactional heap and
inherits its MVCC semantics. This module supplies that layer for the
reproduction:

- every transaction gets a **xid** from a monotone counter;
- heap tuples carry ``xmin`` (inserting xid) and ``xmax`` (deleting xid)
  version stamps (:class:`~repro.storage.heap.HeapTuple`);
- a **commit log** (:class:`CommitLog`, PostgreSQL's ``pg_xact``/clog)
  records each xid's fate — in progress, committed, or aborted;
- a :class:`Snapshot` captures "which xids were committed when I started"
  and answers tuple-visibility questions against the clog, exactly
  PostgreSQL's ``HeapTupleSatisfiesMVCC``.

Snapshot isolation falls out of the rules: a snapshot taken at ``BEGIN``
never sees a commit that happened after it, an aborted transaction's
inserts are invisible from the instant of abort (no undo needed — the
clog verdict *is* the rollback), and deletes become invisible only to
snapshots taken after the deleter committed.

Index entries are **not** versioned: they point at every heap version of
a key and the executor filters fetched tuples by visibility — the exact
division of labour PostgreSQL uses between access methods and the heap.
``VACUUM`` (:meth:`repro.engine.table.Table.vacuum`) reclaims versions
dead to every possible snapshot (the :meth:`TransactionManager.horizon`)
and only then removes their index entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import TxnError
from repro.obs import METRICS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.heap import HeapTuple

#: Sentinel xids. ``XID_INVALID`` means "no transaction" (an unset xmax);
#: ``XID_FROZEN`` stamps bootstrap/non-transactional tuples that are
#: visible to every snapshot (PostgreSQL's ``FrozenTransactionId``).
XID_INVALID = 0
XID_FROZEN = 1

#: The first xid a :class:`TransactionManager` hands out.
FIRST_XID = 2

#: Clog verdicts.
IN_PROGRESS = "in-progress"
COMMITTED = "committed"
ABORTED = "aborted"

_TXN_BEGUN = METRICS.counter(
    "txn_begun_total", "Transactions started (explicit and autocommit)"
)
_TXN_COMMITTED = METRICS.counter(
    "txn_committed_total", "Transactions committed"
)
_TXN_ABORTED = METRICS.counter(
    "txn_aborted_total", "Transactions rolled back"
)
_TXN_ACTIVE = METRICS.gauge(
    "txn_active", "Transactions currently in progress"
)
_TXN_CONFLICTS = METRICS.counter(
    "txn_write_conflicts_total",
    "Write-write conflicts raised (first-updater-wins)",
)


class CommitLog:
    """xid -> fate. The reproduction's ``pg_xact``.

    Unknown xids below the frozen floor are treated as committed (frozen
    history); everything else defaults to in-progress until a verdict is
    recorded — the safe default for visibility (an unknown writer hides
    its work).
    """

    __slots__ = ("_status",)

    def __init__(self) -> None:
        self._status: dict[int, str] = {}

    def status(self, xid: int) -> str:
        """The recorded verdict for ``xid`` (default: in progress)."""
        if xid == XID_FROZEN:
            return COMMITTED
        return self._status.get(xid, IN_PROGRESS)

    def is_committed(self, xid: int) -> bool:
        """True when ``xid``'s work is visible to new snapshots."""
        return self.status(xid) == COMMITTED

    def is_aborted(self, xid: int) -> bool:
        """True when ``xid`` rolled back (its work never existed)."""
        return self.status(xid) == ABORTED

    def set_in_progress(self, xid: int) -> None:
        """Register a freshly-assigned xid as undecided."""
        self._status[xid] = IN_PROGRESS

    def set_committed(self, xid: int) -> None:
        """Record the commit verdict — the atomic instant of commit."""
        self._status[xid] = COMMITTED

    def set_aborted(self, xid: int) -> None:
        """Record the abort verdict — the whole rollback, no undo."""
        self._status[xid] = ABORTED

    def closed_verdicts(self) -> dict[int, str]:
        """Every committed/aborted xid — the shippable clog snapshot."""
        return {
            xid: status
            for xid, status in self._status.items()
            if status != IN_PROGRESS
        }

    def load(self, verdicts: dict[int, str]) -> None:
        """Replace the log with a replicated snapshot (standby revive)."""
        self._status = {int(xid): status for xid, status in verdicts.items()}


@dataclass(frozen=True)
class Snapshot:
    """What one moment in xid-time can see (``SnapshotData`` analogue).

    ``xmin`` — every xid below it is decided (commit/abort) as of the
    snapshot; ``xmax`` — the first xid *not yet assigned*; ``xip`` — xids
    in ``[xmin, xmax)`` still in progress at snapshot time; ``own_xid`` —
    the owning transaction (its own uncommitted work is visible to it).
    """

    xmin: int
    xmax: int
    xip: frozenset[int]
    clog: CommitLog
    own_xid: int | None = None

    def sees(self, xid: int) -> bool:
        """Did ``xid`` commit before this snapshot was taken?"""
        if xid == XID_FROZEN:
            return True
        if xid == XID_INVALID:
            return False
        if xid == self.own_xid:
            return True
        if xid >= self.xmax:
            return False
        if xid in self.xip:
            return False
        return self.clog.is_committed(xid)

    def tuple_visible(self, tup: "HeapTuple") -> bool:
        """``HeapTupleSatisfiesMVCC``: inserted-for-me and not deleted-for-me."""
        if not self.sees(tup.xmin):
            return False
        if tup.xmax == XID_INVALID:
            return True
        return not self.sees(tup.xmax)

    def stamp_visible(self, xmin: int, xmax: int) -> bool:
        """:meth:`tuple_visible` on the bare MVCC header stamps.

        The batch read path memoizes verdicts per distinct ``(xmin,
        xmax)`` pair: within one snapshot's lifetime a stamp's verdict
        never changes (in-progress xids are decided by ``xip``, and clog
        entries for already-ended xids are immutable), so a scan over
        rows written by a handful of transactions pays a handful of clog
        consultations instead of one per row.
        """
        if not self.sees(xmin):
            return False
        if xmax == XID_INVALID:
            return True
        return not self.sees(xmax)


@dataclass
class Transaction:
    """One open transaction: a xid plus the snapshot it reads through."""

    xid: int
    snapshot: Snapshot
    status: str = IN_PROGRESS
    #: TIDs whose xmax this transaction set (deletes and update-old-halves);
    #: consulted by eager pruning after an autocommit statement.
    touched: list = field(default_factory=list)

    @property
    def is_open(self) -> bool:
        return self.status == IN_PROGRESS


class TransactionManager:
    """Allocates xids, tracks active transactions, owns the clog.

    One manager per database/node ("cluster"). Single-threaded by design —
    interleaving comes from holding several :class:`Transaction` objects
    open at once, not from OS threads — which is all the differential
    oracle and the replication layer need.
    """

    def __init__(self) -> None:
        self.clog = CommitLog()
        self.next_xid = FIRST_XID
        self.active: dict[int, Transaction] = {}
        #: Committed xids not yet drained into a WAL commit record.
        self._recent_commits: list[int] = []

    # -- lifecycle ------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction: assign a xid and take its snapshot."""
        xid = self.next_xid
        self.next_xid += 1
        self.clog.set_in_progress(xid)
        snapshot = self._snapshot(own_xid=xid)
        txn = Transaction(xid=xid, snapshot=snapshot)
        self.active[xid] = txn
        _TXN_BEGUN.inc()
        _TXN_ACTIVE.set(len(self.active))
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit: record the clog verdict and queue the xid for WAL."""
        self._close(txn, COMMITTED)
        self._recent_commits.append(txn.xid)
        _TXN_COMMITTED.inc()

    def abort(self, txn: Transaction) -> None:
        """Roll back: the clog verdict hides the txn's work instantly."""
        self._close(txn, ABORTED)
        _TXN_ABORTED.inc()

    def _close(self, txn: Transaction, verdict: str) -> None:
        if not txn.is_open:
            raise TxnError(f"transaction {txn.xid} is already {txn.status}")
        txn.status = verdict
        if verdict == COMMITTED:
            self.clog.set_committed(txn.xid)
        else:
            self.clog.set_aborted(txn.xid)
        self.active.pop(txn.xid, None)
        _TXN_ACTIVE.set(len(self.active))

    # -- snapshots ------------------------------------------------------------

    def _snapshot(self, own_xid: int | None = None) -> Snapshot:
        xip = frozenset(
            xid for xid in self.active if xid != own_xid
        )
        xmin = min(xip, default=self.next_xid)
        return Snapshot(
            xmin=xmin,
            xmax=self.next_xid,
            xip=xip,
            clog=self.clog,
            own_xid=own_xid,
        )

    def read_snapshot(self) -> Snapshot:
        """A fresh statement snapshot for autocommit reads."""
        return self._snapshot()

    # -- vacuum support -------------------------------------------------------

    def horizon(self) -> int:
        """The oldest xid any live snapshot might still need to see.

        Every xid strictly below the horizon is decided *and* visible (or
        invisible) identically to all current and future snapshots, so a
        tuple deleted by a committed xid below it is dead to everyone.
        """
        floors = [txn.snapshot.xmin for txn in self.active.values()]
        floors.extend(self.active)  # an active xid itself is a floor
        return min(floors, default=self.next_xid)

    def tuple_dead(self, tup: "HeapTuple") -> bool:
        """Is this version unreachable by every current & future snapshot?"""
        if tup.xmin != XID_FROZEN:
            status = self.clog.status(tup.xmin)
            if status == ABORTED:
                return True  # never visible to anyone
            if status == IN_PROGRESS:
                return False  # might yet commit
        if tup.xmax == XID_INVALID:
            return False
        if self.clog.status(tup.xmax) != COMMITTED:
            return False  # deleter aborted or undecided: version lives
        return tup.xmax < self.horizon()

    # -- write-write conflicts ------------------------------------------------

    def check_delete_conflict(self, tup: "HeapTuple", txn: Transaction) -> None:
        """First-updater-wins: refuse to re-delete a concurrently-deleted row.

        A tuple whose ``xmax`` belongs to another in-progress or committed
        transaction is already claimed; under snapshot isolation the second
        writer must fail (PostgreSQL's ``could not serialize access``). An
        aborted deleter's claim is void and may be overwritten.
        """
        if tup.xmax == XID_INVALID or tup.xmax == txn.xid:
            return
        if self.clog.is_aborted(tup.xmax):
            return
        _TXN_CONFLICTS.inc()
        raise TxnError(
            f"could not serialize: tuple already deleted/updated by "
            f"transaction {tup.xmax} ({self.clog.status(tup.xmax)})"
        )

    # -- bookkeeping ----------------------------------------------------------

    def quiescent(self) -> bool:
        """True when no transaction is in progress (eager-prune safe)."""
        return not self.active

    def drain_recent_commits(self) -> list[int]:
        """Committed xids since the last drain (for WAL commit records)."""
        drained = self._recent_commits
        self._recent_commits = []
        return drained

    # -- replication ----------------------------------------------------------

    def state_snapshot(self) -> dict:
        """The shippable manager state (meta-page payload on a primary)."""
        return {
            "next_xid": self.next_xid,
            "clog": self.clog.closed_verdicts(),
        }

    def load_state(self, state: dict) -> None:
        """Revive from a replicated snapshot (standby/restart path).

        In-flight transactions never replicate — a shipped snapshot only
        holds closed verdicts, so a standby exposes exactly the committed
        history.
        """
        self.next_xid = int(state["next_xid"])
        self.clog.load(dict(state["clog"]))
        self.active.clear()
        self._recent_commits = []
        _TXN_ACTIVE.set(0)

    def statuses_of(self, xids: Iterable[int]) -> dict[int, str]:
        """Clog verdicts for ``xids`` (observability/debugging helper)."""
        return {xid: self.clog.status(xid) for xid in xids}
