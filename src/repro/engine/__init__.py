"""Miniature PostgreSQL-style extensibility layer (paper Section 4).

The paper realizes SP-GiST *inside* PostgreSQL using three extension hooks:
a ``pg_am`` catalog row naming the access method's interface routines
(Table 2), operator definitions with selectivity-restriction procedures
(Table 4), and operator classes binding operators and support functions to
an access method for a data type (Table 5). This package reproduces that
layering:

- :mod:`repro.engine.catalog` — the system catalog (``pg_am``,
  ``pg_operator``, ``pg_opclass`` analogues) with runtime registration, so
  adding a new index type touches no engine code ("no recompilation").
- :mod:`repro.engine.operators` — operator procedures (``trieword_equal``
  and friends) usable by any scan for filtering/recheck.
- :mod:`repro.engine.selectivity` / :mod:`repro.engine.cost` — ``eqsel`` /
  ``contsel`` / ``likesel`` restriction estimators and the
  ``spgistcostestimate`` analogue.
- :mod:`repro.engine.table` — heap-backed tables with secondary indexes.
- :mod:`repro.engine.planner` / :mod:`repro.engine.executor` — cost-based
  access-path selection and execution.
- :mod:`repro.engine.sql` — a mini SQL front end covering the paper's
  Table 6 statements (CREATE TABLE / CREATE INDEX ... USING SP_GiST /
  INSERT / SELECT ... WHERE col <op> literal / EXPLAIN).
"""

from repro.engine.catalog import AccessMethodEntry, SystemCatalog, default_catalog
from repro.engine.operators import Operator
from repro.engine.opclass import OperatorClass
from repro.engine.table import Column, Table
from repro.engine.planner import Predicate, plan_query
from repro.engine.executor import execute_plan
from repro.engine.explain import ExplainReport, NodeReport, explain, explain_analyze
from repro.engine.sql import Database

__all__ = [
    "AccessMethodEntry",
    "SystemCatalog",
    "default_catalog",
    "Operator",
    "OperatorClass",
    "Column",
    "Table",
    "Predicate",
    "plan_query",
    "execute_plan",
    "ExplainReport",
    "NodeReport",
    "explain",
    "explain_analyze",
    "Database",
]
