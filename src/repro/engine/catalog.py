"""The system catalog: ``pg_am``, ``pg_operator``, ``pg_opclass`` analogues.

Table 2 of the paper shows the single INSERT into ``pg_am`` that introduces
SP-GiST to PostgreSQL; :func:`default_catalog` performs the equivalent
registrations at runtime. Nothing outside this module hard-codes the set of
access methods — adding one is a catalog insert, which is the paper's
portability claim in executable form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.engine.operators import Operator, builtin_operators
from repro.engine.opclass import NN_STRATEGY, OperatorClass


@dataclass(frozen=True)
class AccessMethodEntry:
    """One ``pg_am`` row; column-for-column with the paper's Table 2."""

    amname: str
    amowner: int = 0
    amstrategies: int = 20
    amsupport: int = 20
    amorderstrategy: int = 0
    amcanunique: bool = False
    amcanmulticol: bool = False
    amindexnulls: bool = False
    amconcurrent: bool = True
    amgettuple: str = "-"
    aminsert: str = "-"
    ambeginscan: str = "-"
    amrescan: str = "-"
    amendscan: str = "-"
    ammarkpos: str = "-"
    amrestrpos: str = "-"
    ambuild: str = "-"
    ambulkdelete: str = "-"
    amvacuumcleanup: str = "-"
    amcostestimate: str = "-"


def spgist_am_entry() -> AccessMethodEntry:
    """The paper's Table 2 row, verbatim."""
    return AccessMethodEntry(
        amname="SP_GiST",
        amowner=0,
        amstrategies=20,
        amsupport=20,
        amorderstrategy=0,  # SP-GiST entries have no inherent order
        amcanunique=False,
        amcanmulticol=False,
        amindexnulls=False,
        amconcurrent=True,
        amgettuple="spgistgettuple",
        aminsert="spgistinsert",
        ambeginscan="spgistbeginscan",
        amrescan="spgistrescan",
        amendscan="spgistendscan",
        ammarkpos="spgistmarkpos",
        amrestrpos="spgistrestrpos",
        ambuild="spgistbuild",
        ambulkdelete="spgistbulkdelete",
        amvacuumcleanup="-",
        amcostestimate="spgistcostestimate",
    )


class SystemCatalog:
    """Runtime-extensible registry of access methods, operators, opclasses."""

    def __init__(self) -> None:
        self.access_methods: dict[str, AccessMethodEntry] = {}
        self.operators: dict[tuple[str, str, str], Operator] = {}
        self.opclasses: dict[str, OperatorClass] = {}

    # -- registration (the extension surface) ------------------------------------

    def register_access_method(self, entry: AccessMethodEntry) -> None:
        """Insert a pg_am row (the paper's Table 2 INSERT)."""
        key = entry.amname.lower()
        if key in self.access_methods:
            raise CatalogError(f"access method {entry.amname!r} already exists")
        self.access_methods[key] = entry

    def register_operator(self, operator: Operator) -> None:
        """Insert a pg_operator row (CREATE OPERATOR)."""
        key = (operator.name, operator.left_type, operator.right_type)
        if key in self.operators:
            raise CatalogError(f"operator {key} already exists")
        self.operators[key] = operator

    def register_opclass(self, opclass: OperatorClass) -> None:
        """Insert a pg_opclass row (CREATE OPERATOR CLASS)."""
        key = opclass.name.lower()
        if key in self.opclasses:
            raise CatalogError(f"operator class {opclass.name!r} already exists")
        if opclass.access_method.lower() not in self.access_methods:
            raise CatalogError(
                f"operator class {opclass.name!r} references unknown access "
                f"method {opclass.access_method!r}"
            )
        self.opclasses[key] = opclass

    # -- lookup --------------------------------------------------------------------

    def access_method(self, name: str) -> AccessMethodEntry:
        """Look up an access method by (case-insensitive) name."""
        try:
            return self.access_methods[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown access method {name!r}") from None

    def operator(self, name: str, left_type: str, right_type: str) -> Operator:
        """Look up an operator by name and operand types."""
        try:
            return self.operators[(name, left_type, right_type)]
        except KeyError:
            raise CatalogError(
                f"unknown operator {name!r} for ({left_type}, {right_type})"
            ) from None

    def operators_named(self, name: str, left_type: str) -> list[Operator]:
        """All operators called ``name`` whose left operand is ``left_type``."""
        return [
            op
            for (op_name, lt, _), op in self.operators.items()
            if op_name == name and lt == left_type
        ]

    def opclass(self, name: str) -> OperatorClass:
        """Look up an operator class by (case-insensitive) name."""
        try:
            return self.opclasses[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown operator class {name!r}") from None

    def default_opclass(self, access_method: str, for_type: str) -> OperatorClass:
        """First registered opclass of ``access_method`` for ``for_type``."""
        for opclass in self.opclasses.values():
            if (
                opclass.access_method.lower() == access_method.lower()
                and opclass.for_type == for_type
            ):
                return opclass
        raise CatalogError(
            f"no operator class for access method {access_method!r} and "
            f"type {for_type!r}"
        )


def default_catalog() -> SystemCatalog:
    """A catalog primed with the paper's access methods and opclasses.

    Built-ins mirror PostgreSQL 8.0.1 (Section 4.2): heap, btree, rtree,
    plus the SP_GiST access method and the five opclasses of Table 5 (trie,
    kd-tree, suffix tree) extended with the point quadtree and PMR quadtree
    used in Section 6.
    """
    from repro.geometry.box import Box
    from repro.indexes.kdtree import KDTreeMethods
    from repro.indexes.pmr import PMRQuadtreeMethods
    from repro.indexes.pquadtree import PointQuadtreeMethods
    from repro.indexes.prquadtree import PRQuadtreeMethods
    from repro.indexes.suffix import SuffixTreeMethods
    from repro.indexes.trie import TrieMethods

    catalog = SystemCatalog()
    catalog.register_access_method(AccessMethodEntry(amname="heap"))
    catalog.register_access_method(
        AccessMethodEntry(
            amname="btree",
            amorderstrategy=1,
            amcanunique=True,
            amgettuple="btgettuple",
            aminsert="btinsert",
            ambuild="btbuild",
            amcostestimate="btcostestimate",
        )
    )
    catalog.register_access_method(
        AccessMethodEntry(
            amname="hash",
            amgettuple="hashgettuple",
            aminsert="hashinsert",
            ambuild="hashbuild",
            amcostestimate="hashcostestimate",
        )
    )
    catalog.register_access_method(
        AccessMethodEntry(
            amname="rtree",
            amgettuple="rtgettuple",
            aminsert="rtinsert",
            ambuild="rtbuild",
            amcostestimate="rtcostestimate",
        )
    )
    catalog.register_access_method(spgist_am_entry())

    for operator in builtin_operators():
        catalog.register_operator(operator)

    catalog.register_opclass(
        OperatorClass(
            name="SP_GiST_trie",
            access_method="SP_GiST",
            for_type="varchar",
            operators={1: "=", 2: "#=", 3: "?=", 4: "*=", NN_STRATEGY: "@@"},
            methods_factory=TrieMethods,
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="SP_GiST_kdtree",
            access_method="SP_GiST",
            for_type="point",
            operators={1: "@", 2: "^", NN_STRATEGY: "@@"},
            methods_factory=KDTreeMethods,
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="SP_GiST_suffix",
            access_method="SP_GiST",
            for_type="varchar",
            operators={1: "@=", NN_STRATEGY: "@@"},
            methods_factory=SuffixTreeMethods,
            key_extractor=SuffixTreeMethods.extract_keys,
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="SP_GiST_pquadtree",
            access_method="SP_GiST",
            for_type="point",
            operators={1: "@", 2: "^", NN_STRATEGY: "@@"},
            methods_factory=PointQuadtreeMethods,
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="SP_GiST_prquadtree",
            access_method="SP_GiST",
            for_type="point",
            operators={1: "@", 2: "^", NN_STRATEGY: "@@"},
            methods_factory=lambda world=Box(0.0, 0.0, 100.0, 100.0), **kw: (
                PRQuadtreeMethods(world, **kw)
            ),
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="SP_GiST_pmr",
            access_method="SP_GiST",
            for_type="lseg",
            operators={1: "=", 2: "&&", NN_STRATEGY: "@@"},
            methods_factory=lambda world=Box(0.0, 0.0, 100.0, 100.0), **kw: (
                PMRQuadtreeMethods(world, **kw)
            ),
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="btree_varchar",
            access_method="btree",
            for_type="varchar",
            operators={1: "<", 2: "<=", 3: "=", 4: ">=", 5: ">",
                       6: "#=", 7: "?=", 8: "*="},
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="btree_int",
            access_method="btree",
            for_type="int",
            operators={1: "<", 2: "<=", 3: "=", 4: ">=", 5: ">"},
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="hash_varchar",
            access_method="hash",
            for_type="varchar",
            operators={1: "="},
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="hash_int",
            access_method="hash",
            for_type="int",
            operators={1: "="},
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="rtree_point",
            access_method="rtree",
            for_type="point",
            operators={1: "@", 2: "^"},
        )
    )
    catalog.register_opclass(
        OperatorClass(
            name="rtree_lseg",
            access_method="rtree",
            for_type="lseg",
            operators={1: "=", 2: "&&"},
        )
    )
    return catalog
