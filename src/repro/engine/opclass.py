"""Operator classes (paper Table 5).

An operator class binds, for one access method and one data type, the
strategy-numbered operators the index can serve and the support functions
the access method calls internally. For SP-GiST opclasses the support
functions are the external methods — consistent (1), picksplit (2),
nn_consistent (3), getparameters (4) — which we carry as a factory producing
a configured :class:`~repro.core.external.ExternalMethods` object, the exact
analogue of the paper's loadable extension module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.external import ExternalMethods

#: Strategy number the paper assigns to the NN operator ``@@`` (Table 5).
NN_STRATEGY = 20


@dataclass(frozen=True)
class OperatorClass:
    """A ``pg_opclass`` row.

    - ``name``: e.g. ``"SP_GiST_trie"``.
    - ``access_method``: e.g. ``"SP_GiST"``, ``"btree"``, ``"rtree"``.
    - ``for_type``: the indexed column type (``"varchar"``, ``"point"``, ...).
    - ``operators``: strategy number → operator name, as in
      ``AS OPERATOR 1 =, OPERATOR 2 #=, ...``.
    - ``methods_factory``: SP-GiST only — builds the external-method object
      (support functions 1–4). ``kwargs`` are forwarded so DDL can
      parameterize instantiations (bucket size, world box, ...).
    - ``key_extractor``: optional fan-out of one column value into several
      index keys (the suffix tree indexes every suffix).
    """

    name: str
    access_method: str
    for_type: str
    operators: dict[int, str] = field(default_factory=dict)
    methods_factory: Callable[..., ExternalMethods] | None = None
    key_extractor: Callable[[Any], Any] | None = None

    def supports_operator(self, op_name: str) -> bool:
        """True when this class lists ``op_name`` at any strategy number."""
        return op_name in self.operators.values()

    def strategy_of(self, op_name: str) -> int | None:
        """Strategy number of ``op_name`` in this class, or None."""
        for strategy, name in self.operators.items():
            if name == op_name:
                return strategy
        return None

    def make_methods(self, **kwargs: Any) -> ExternalMethods:
        """Instantiate the SP-GiST external-method object (support funcs)."""
        if self.methods_factory is None:
            raise TypeError(
                f"operator class {self.name} has no SP-GiST support functions"
            )
        return self.methods_factory(**kwargs)

    def support_functions(self, **kwargs: Any) -> dict[int, Callable]:
        """The numbered support functions (paper Table 5's FUNCTION list)."""
        methods = self.make_methods(**kwargs)
        return {
            1: methods.consistent,
            2: methods.picksplit,
            3: getattr(methods, "nn_inner_distance", None),
            4: methods.get_parameters,
        }
