"""Cost-based access-path selection (paper Section 4.2).

Given one predicate ``col <op> literal``, the planner enumerates the
sequential scan plus every index whose operator class contains the operator,
costs each path with the estimators in :mod:`repro.engine.cost`, and keeps
the cheapest — the decision PostgreSQL's optimizer makes from the
``amcostestimate`` entry the paper registers for SP-GiST.

The NN operator ``@@`` (strategy 20) yields an ordered scan: an NN-capable
index streams TIDs by distance; without one the planner falls back to a
sort-all sequential scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.cost import (
    CostEstimate,
    btree_cost_estimate,
    rtree_cost_estimate,
    seqscan_cost,
    spgist_cost_estimate,
)
from repro.engine.table import Table, TableIndex
from repro.errors import (
    IndexCorruptionError,
    PageChecksumError,
    PlannerError,
)

#: Operator names treated as nearest-neighbour (ordered) scans.
NN_OPERATOR = "@@"


@dataclass(frozen=True)
class Predicate:
    """One WHERE clause: ``column <op> operand``."""

    column: str
    op: str
    operand: Any


@dataclass
class Plan:
    """Base class for access paths; ``kind`` names the node type."""

    table: Table
    predicate: Predicate | None
    cost: CostEstimate
    #: Which replication node serves this plan ("" = the local/default
    #: engine). Stamped by the read router (:mod:`repro.replication`) so
    #: EXPLAIN shows where a routed query actually ran.
    served_by: str = ""
    #: The MVCC snapshot this plan reads through. ``None`` means "resolve
    #: a fresh one at execution time" (autocommit statement semantics);
    #: the SQL layer stamps an open transaction's snapshot here so every
    #: statement of the transaction reads the same database state.
    snapshot: Any = None

    kind = "Plan"

    def describe(self) -> str:
        """One-line EXPLAIN rendering of this access path."""
        where = ""
        if self.predicate is not None:
            where = (
                f" where {self.predicate.column} {self.predicate.op} "
                f"{self.predicate.operand!r}"
            )
        serving = f" [served by {self.served_by}]" if self.served_by else ""
        return (
            f"{self.kind} on {self.table.name}{where} "
            f"(cost={self.cost.startup_cost:.2f}..{self.cost.total_cost:.2f} "
            f"sel={self.cost.selectivity:.4f}){serving}"
        )


@dataclass
class SeqScanPlan(Plan):
    kind = "Seq Scan"


@dataclass
class IndexScanPlan(Plan):
    index: TableIndex = None  # type: ignore[assignment]

    kind = "Index Scan"

    def describe(self) -> str:
        return super().describe() + f" using {self.index.name}"


@dataclass
class NNIndexScanPlan(Plan):
    index: TableIndex = None  # type: ignore[assignment]

    kind = "NN Index Scan"

    def describe(self) -> str:
        return super().describe() + f" using {self.index.name}"


@dataclass
class NNSortScanPlan(Plan):
    kind = "NN Sort Scan"


def plan_query(table: Table, predicate: Predicate | None) -> Plan:
    """Choose the cheapest access path for ``SELECT ... WHERE predicate``."""
    if predicate is None:
        return SeqScanPlan(
            table, None, seqscan_cost(table.heap_pages, len(table))
        )
    if predicate.op == NN_OPERATOR:
        return _plan_nn(table, predicate)

    column = table.column(predicate.column)
    operator = _find_operator(table, column.type_name, predicate.op)
    stats = table.stats(predicate.column)
    candidates: list[Plan] = [
        SeqScanPlan(table, predicate, seqscan_cost(table.heap_pages, len(table)))
    ]
    for index in table.indexes.values():
        if index.quarantined:
            continue  # corruption seen by the executor; do not plan into it
        if index.column.name != predicate.column:
            continue
        if not index.supports(predicate.op):
            continue
        try:
            cost = _index_cost(index, stats, table, operator.restrict, predicate)
        except (IndexCorruptionError, PageChecksumError) as exc:
            _quarantine(index, exc)
            continue
        candidates.append(IndexScanPlan(table, predicate, cost, index=index))
    return min(candidates, key=lambda plan: plan.cost.total_cost)


def _quarantine(index: TableIndex, error: Exception) -> None:
    """Corruption surfaced while *costing* an index: sideline it.

    Cost estimation walks the index (page counts, page height), so it can
    trip over a corrupt page before any scan starts. Record the incident
    and quarantine the index so planning proceeds with the healthy paths.
    """
    from repro.resilience.incidents import INCIDENTS

    INCIDENTS.record("index-cost-degraded", index.name, error)
    index.quarantined = True


def _plan_nn(table: Table, predicate: Predicate) -> Plan:
    for index in table.indexes.values():
        if index.quarantined:
            continue
        if index.column.name == predicate.column and index.supports_nn():
            stats = table.stats()
            try:
                cost = spgist_cost_estimate(
                    index.num_pages,
                    index.page_height,
                    stats,
                    table.heap_pages,
                    restrict="contsel",
                    operand=predicate.operand,
                )
            except (IndexCorruptionError, PageChecksumError) as exc:
                _quarantine(index, exc)
                continue
            return NNIndexScanPlan(table, predicate, cost, index=index)
    return NNSortScanPlan(
        table, predicate, seqscan_cost(table.heap_pages, len(table))
    )


def _find_operator(table: Table, left_type: str, op_name: str):
    matches = table.catalog.operators_named(op_name, left_type)
    if not matches:
        raise PlannerError(
            f"no operator {op_name!r} for left type {left_type!r}"
        )
    return matches[0]


def _index_cost(
    index: TableIndex,
    stats,
    table: Table,
    restrict: str,
    predicate: Predicate,
) -> CostEstimate:
    if index.access_method == "btree":
        leading_wildcard = (
            predicate.op == "?="
            and isinstance(predicate.operand, str)
            and predicate.operand.startswith("?")
        )
        return btree_cost_estimate(
            index.num_pages,
            index.page_height,
            stats,
            table.heap_pages,
            restrict,
            predicate.operand,
            leading_wildcard=leading_wildcard,
        )
    if index.access_method == "rtree":
        return rtree_cost_estimate(
            index.num_pages,
            index.page_height,
            stats,
            table.heap_pages,
            restrict,
            predicate.operand,
        )
    return spgist_cost_estimate(
        index.num_pages,
        index.page_height,
        stats,
        table.heap_pages,
        restrict,
        predicate.operand,
    )
