"""Restriction selectivity estimators (paper Section 4.2, cost item 1).

PostgreSQL attaches a restriction procedure to each operator (``restrict =
eqsel`` in Table 4); the planner calls it to guess what fraction of the
table a predicate keeps. We reproduce the same procedure names with
PostgreSQL's default constants, refined slightly by table statistics when
available (distinct-count for equality, pattern shape for ``likesel``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: PostgreSQL's default selectivity constants (src/include/utils/selfuncs.h).
DEFAULT_EQ_SEL = 0.005
DEFAULT_RANGE_INEQ_SEL = 0.005
DEFAULT_MATCH_SEL = 0.005
DEFAULT_CONT_SEL = 0.001
DEFAULT_INEQ_SEL = 1.0 / 3.0

#: Per-character selectivity decay used by likesel for literal characters
#: (PostgreSQL's FIXED_CHAR_SEL is 0.20; we bias slightly lower because the
#: experimental alphabet is uniform over 26 letters).
CHAR_SEL = 0.15


@dataclass(frozen=True)
class TableStats:
    """The slice of ``pg_statistic`` our estimators look at."""

    row_count: int
    distinct_count: int | None = None


def eqsel(stats: TableStats | None, operand: Any = None) -> float:
    """Equality selectivity: 1/ndistinct when known, else the default."""
    if stats and stats.distinct_count:
        return max(1.0 / stats.distinct_count, 1.0 / max(stats.row_count, 1))
    return DEFAULT_EQ_SEL


def contsel(stats: TableStats | None, operand: Any = None) -> float:
    """Containment (range/window) selectivity — PostgreSQL's flat default."""
    return DEFAULT_CONT_SEL


def likesel(stats: TableStats | None, operand: Any = None) -> float:
    """Pattern-match selectivity, shaped by the pattern's literal prefix.

    Mirrors PostgreSQL's ``patternsel``: each literal character multiplies
    selectivity by :data:`CHAR_SEL`; wildcards contribute nothing. A pattern
    with no literal characters keeps everything.
    """
    if not isinstance(operand, str) or not operand:
        return DEFAULT_MATCH_SEL
    literal = sum(1 for ch in operand if ch != "?")
    if literal == 0:
        return 1.0
    return max(CHAR_SEL ** min(literal, 10), 1e-6)


def scalarltsel(stats: TableStats | None, operand: Any = None) -> float:
    """``<``/``<=`` selectivity without histograms: the flat default third."""
    return DEFAULT_INEQ_SEL


def scalargtsel(stats: TableStats | None, operand: Any = None) -> float:
    """``>``/``>=`` selectivity without histograms: the flat default third."""
    return DEFAULT_INEQ_SEL


_RESTRICTION_PROCS = {
    "eqsel": eqsel,
    "contsel": contsel,
    "likesel": likesel,
    "scalarltsel": scalarltsel,
    "scalargtsel": scalargtsel,
}


def estimate_selectivity(
    restrict: str, stats: TableStats | None, operand: Any = None
) -> float:
    """Dispatch to the named restriction procedure (default: eqsel)."""
    proc = _RESTRICTION_PROCS.get(restrict, eqsel)
    return float(min(max(proc(stats, operand), 0.0), 1.0))
