"""EXPLAIN / EXPLAIN ANALYZE with per-layer observability.

The paper's Section 5 is a measurement study: every comparison attributes
cost to a layer — planner choice, index descent, heap fetch, WAL. This
module is the query-level entry point to that attribution. ``explain``
renders the chosen plan tree with the planner's estimates;
``explain_analyze`` also runs the plan and reports, per node, the actual
row count and inclusive wall time, plus a per-layer section derived from
the :data:`repro.obs.METRICS` delta of the execution: buffer hits /
misses / evictions / write-backs, WAL records and bytes, checksum
verifications and failures, transient-fault retries, SP-GiST nodes
visited, and incidents recorded.

The buffer lines are cross-checked against the pool's own
:class:`~repro.storage.buffer.BufferStats` delta — the two accounting
paths must agree, and the obs test suite asserts they do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.engine.planner import (
    IndexScanPlan,
    NNIndexScanPlan,
    Plan,
)
from repro.obs import METRICS
from repro.settings import SETTINGS
from repro.storage.buffer import BufferStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.sql import Database


class _InstrumentedIter:
    """Counts rows and inclusive wall time spent producing them."""

    __slots__ = ("inner", "rows", "seconds")

    def __init__(self, inner: Iterator[tuple]) -> None:
        self.inner = inner
        self.rows = 0
        self.seconds = 0.0

    def __iter__(self) -> "_InstrumentedIter":
        return self

    def __next__(self) -> tuple:
        started = time.perf_counter()
        try:
            row = next(self.inner)
        finally:
            self.seconds += time.perf_counter() - started
        self.rows += 1
        return row


class _InstrumentedBatches:
    """Counts batches, rows, and inclusive wall time of a batch stream."""

    __slots__ = ("inner", "rows", "batches", "seconds")

    def __init__(self, inner: Iterator[list[tuple]]) -> None:
        self.inner = inner
        self.rows = 0
        self.batches = 0
        self.seconds = 0.0

    def __iter__(self) -> "_InstrumentedBatches":
        return self

    def __next__(self) -> list[tuple]:
        started = time.perf_counter()
        try:
            batch = next(self.inner)
        finally:
            self.seconds += time.perf_counter() - started
        self.batches += 1
        self.rows += len(batch)
        return batch


@dataclass
class NodeReport:
    """One plan node's estimated and (optionally) actual figures."""

    label: str
    est_rows: int | None = None
    startup_cost: float | None = None
    total_cost: float | None = None
    selectivity: float | None = None
    actual_rows: int | None = None
    actual_batches: int | None = None
    wall_ms: float | None = None
    children: list["NodeReport"] = field(default_factory=list)

    def render(self, indent: int = 0) -> list[str]:
        """This node and its children as indented plan-tree text lines."""
        prefix = "  " * indent + ("-> " if indent else "")
        text = prefix + self.label
        if self.total_cost is not None:
            text += (
                f" (cost={self.startup_cost:.2f}..{self.total_cost:.2f}"
                f" sel={self.selectivity:.4f} est rows={self.est_rows})"
            )
        if self.actual_rows is not None:
            batches = ""
            if self.actual_batches is not None:
                batches = f" batches={self.actual_batches}"
            text += (
                f" (actual rows={self.actual_rows}{batches}"
                f" time={self.wall_ms:.3f}ms)"
            )
        lines = [text]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


@dataclass
class ExplainReport:
    """A rendered-on-demand EXPLAIN [ANALYZE] result.

    ``str(report)`` (or :meth:`render`) gives the textual form; the typed
    fields stay available so tests and tools can reconcile counters
    without parsing text.
    """

    root: NodeReport
    analyzed: bool
    planning_ms: float
    execution_ms: float | None = None
    buffers: BufferStats | None = None  # pool-side delta (ground truth)
    metrics: dict[str, float] = field(default_factory=dict)  # registry delta

    def metric(self, prefix: str) -> float:
        """Sum of every registry-delta sample whose name starts ``prefix``.

        Labeled families produce one sample per child
        (``buffer_retries_total{op="read"}`` ...); summing by prefix folds
        them back into one per-layer figure.
        """
        return sum(
            value
            for name, value in self.metrics.items()
            if name == prefix or name.startswith(prefix + "{")
        )

    def render(self) -> str:
        """The full textual report: plan tree plus per-layer footer."""
        lines = self.root.render()
        if self.analyzed:
            m = self.metric
            lines.append(
                "buffers: "
                f"hit={m('buffer_hits_total'):.0f} "
                f"read={m('buffer_misses_total'):.0f} "
                f"evicted={m('buffer_evictions_total'):.0f} "
                f"written={m('buffer_dirty_writebacks_total'):.0f}"
            )
            lines.append(
                "wal: "
                f"records={m('wal_records_total'):.0f} "
                f"bytes={m('wal_bytes_total'):.0f} "
                f"commits={m('wal_commits_total'):.0f}"
            )
            lines.append(
                "checksums: "
                f"verified={m('checksum_verifications_total'):.0f} "
                f"failed={m('checksum_failures_total'):.0f}"
            )
            lines.append(
                "retries: "
                f"transient={m('buffer_retries_total'):.0f}"
            )
            nodes = m("spgist_nodes_visited_total")
            if nodes:
                lines.append(f"spgist: nodes visited={nodes:.0f}")
            incidents = m("incidents_total")
            if incidents:
                lines.append(f"incidents: {incidents:.0f}")
            lines.append(
                f"planning time={self.planning_ms:.3f}ms  "
                f"execution time={self.execution_ms:.3f}ms"
            )
        else:
            lines.append(f"planning time={self.planning_ms:.3f}ms")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _limit_batches(
    batches: Iterator[list[tuple]], limit: int
) -> Iterator[list[tuple]]:
    """LIMIT over a batch stream: truncate the batch that crosses it."""
    if limit <= 0:
        return
    taken = 0
    for batch in batches:
        remaining = limit - taken
        if len(batch) >= remaining:
            yield batch[:remaining]
            return
        taken += len(batch)
        yield batch


def _strip_explain_prefix(sql: str) -> str:
    text = sql.strip()
    lowered = text.lower()
    if lowered.startswith("explain"):
        text = text[len("explain"):].strip()
        lowered = text.lower()
        if lowered.startswith("analyze"):
            text = text[len("analyze"):].strip()
    return text


def _plan_node(plan: Plan, row_count: int) -> NodeReport:
    """Describe one access-path node with the planner's estimates."""
    label = f"{plan.kind} on {plan.table.name}"
    if isinstance(plan, (IndexScanPlan, NNIndexScanPlan)):
        label = f"{plan.kind} using {plan.index.name} on {plan.table.name}"
    if plan.predicate is not None:
        label += (
            f" where {plan.predicate.column} {plan.predicate.op} "
            f"{plan.predicate.operand!r}"
        )
    cost = plan.cost
    return NodeReport(
        label=label,
        est_rows=max(1, round(cost.selectivity * row_count)) if row_count else 0,
        startup_cost=cost.startup_cost,
        total_cost=cost.total_cost,
        selectivity=cost.selectivity,
    )


def explain(db: "Database", sql: str) -> ExplainReport:
    """Plan ``sql`` (a SELECT, with or without a leading EXPLAIN) — no I/O."""
    inner = _strip_explain_prefix(sql)
    started = time.perf_counter()
    plan, limit = db._parse_select(inner)
    planning_ms = (time.perf_counter() - started) * 1000.0
    node = _plan_node(plan, len(plan.table))
    root = node
    if limit is not None:
        root = NodeReport(label=f"Limit (rows={limit})", children=[node])
    return ExplainReport(root=root, analyzed=False, planning_ms=planning_ms)


def explain_analyze(db: "Database", sql: str) -> ExplainReport:
    """Plan *and run* ``sql``, reporting actuals and per-layer counters.

    Rows are produced and discarded (PostgreSQL EXPLAIN ANALYZE
    semantics); every side effect of execution — buffer traffic, WAL
    appends, checksum verifications, degradation incidents — lands in the
    report's per-layer section.
    """
    from repro.engine.executor import execute_plan_batches

    inner = _strip_explain_prefix(sql)
    started = time.perf_counter()
    plan, limit = db._parse_select(inner)
    planning_ms = (time.perf_counter() - started) * 1000.0

    node = _plan_node(plan, len(plan.table))
    buffers_before = db.buffer.stats.snapshot()
    metrics_before = METRICS.snapshot()

    # The scan node is instrumented at batch granularity — the executor's
    # actual unit of work — so the report shows how many batches each node
    # produced alongside the row count. A LIMIT caps the batch size, so a
    # lazy scan (NN especially) never produces more rows than the limit
    # needs plus a partial batch.
    batch_size = None if limit is None else max(1, min(SETTINGS.batch_size, limit))
    scan_iter = _InstrumentedBatches(
        execute_plan_batches(plan, batch_size=batch_size)
    )
    top_iter: _InstrumentedBatches | Any = scan_iter
    root = node
    if limit is not None:
        top_iter = _InstrumentedBatches(_limit_batches(scan_iter, limit))
        root = NodeReport(label=f"Limit (rows={limit})", children=[node])

    run_started = time.perf_counter()
    for _batch in top_iter:
        pass
    execution_ms = (time.perf_counter() - run_started) * 1000.0

    node.actual_rows = scan_iter.rows
    node.actual_batches = scan_iter.batches
    node.wall_ms = scan_iter.seconds * 1000.0
    if limit is not None:
        root.actual_rows = top_iter.rows
        root.actual_batches = top_iter.batches
        root.wall_ms = top_iter.seconds * 1000.0

    return ExplainReport(
        root=root,
        analyzed=True,
        planning_ms=planning_ms,
        execution_ms=execution_ms,
        buffers=db.buffer.stats.delta(buffers_before),
        metrics=METRICS.delta(metrics_before, METRICS.snapshot()),
    )
