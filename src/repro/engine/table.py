"""Heap-backed tables with catalog-driven secondary indexes.

A :class:`Table` stores rows (tuples) in a :class:`HeapFile` and maintains
any number of indexes created through operator classes, exactly like the
paper's Table 6 DDL::

    CREATE TABLE word_data (name VARCHAR(50), id INT);
    CREATE INDEX sp_trie_index ON word_data
        USING SP_GiST (name SP_GiST_trie);

Index rows carry heap TupleIds as values; scans return TIDs which the
executor resolves back to rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.baselines.bptree import BPlusTree
from repro.baselines.hash import HashIndex
from repro.baselines.rtree import RTree
from repro.core.external import Query
from repro.core.tree import SPGiSTIndex
from repro.engine.catalog import SystemCatalog
from repro.engine.opclass import NN_STRATEGY, OperatorClass
from repro.engine.selectivity import TableStats
from repro.errors import CatalogError, PlannerError
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, TupleId


@dataclass(frozen=True)
class Column:
    """One table column: a name and a catalog type name."""

    name: str
    type_name: str  # "varchar", "int", "float", "point", "lseg"


class TableIndex:
    """One secondary index over one column of a table."""

    def __init__(
        self,
        name: str,
        table: "Table",
        column: Column,
        column_index: int,
        opclass: OperatorClass,
        **opclass_kwargs: Any,
    ) -> None:
        self.name = name
        self.table = table
        self.column = column
        self.column_index = column_index
        self.opclass = opclass
        self.access_method = opclass.access_method.lower()
        self.key_extractor = opclass.key_extractor
        self.structure = self._make_structure(table.buffer, **opclass_kwargs)
        #: Set by the executor when a scan hit corruption in this index;
        #: the planner stops choosing quarantined indexes until the flag is
        #: cleared (e.g. after a REINDEX-style rebuild).
        self.quarantined = False

    def _make_structure(self, buffer: BufferPool, **kwargs: Any) -> Any:
        if self.access_method == "sp_gist":
            return SPGiSTIndex(buffer, self.opclass.make_methods(**kwargs),
                               name=self.name)
        if self.access_method == "btree":
            return BPlusTree(buffer, name=self.name)
        if self.access_method == "rtree":
            return RTree(buffer, name=self.name)
        if self.access_method == "hash":
            return HashIndex(buffer, name=self.name)
        raise CatalogError(
            f"access method {self.opclass.access_method!r} cannot back an index"
        )

    # -- maintenance ------------------------------------------------------------

    def _keys_of(self, value: Any) -> list[Any]:
        if self.key_extractor is None:
            return [value]
        return list(self.key_extractor(value))

    def insert_row(self, tid: TupleId, row: tuple) -> None:
        """Index the column value(s) of one new heap row."""
        value = row[self.column_index]
        for key in self._keys_of(value):
            self.structure.insert(key, tid)

    def insert_rows(self, pairs: list[tuple[TupleId, tuple]]) -> None:
        """Index a batch of new heap rows in one structure call.

        SP-GiST indexes take :meth:`SPGiSTIndex.insert_many` (the batched
        hot path); other access methods fall back to per-key inserts.
        """
        items = []
        for tid, row in pairs:
            value = row[self.column_index]
            for key in self._keys_of(value):
                items.append((key, tid))
        if isinstance(self.structure, SPGiSTIndex):
            self.structure.insert_many(items)
        else:
            for key, tid in items:
                self.structure.insert(key, tid)

    def purge_node_cache(self) -> None:
        """Drop this index's deserialized-node cache, if it has one."""
        purge = getattr(self.structure, "purge_node_cache", None)
        if purge is not None:
            purge()

    def delete_row(self, tid: TupleId, row: tuple) -> None:
        """Remove one heap row's entries from the index."""
        value = row[self.column_index]
        for key in set(self._keys_of(value)):
            self.structure.delete(key, tid)

    # -- scans -----------------------------------------------------------------------

    def supports(self, op_name: str) -> bool:
        """Can this index serve ``op_name`` (is it in the opclass)?"""
        return self.opclass.supports_operator(op_name)

    def supports_nn(self) -> bool:
        """Can this index stream results by distance (operator @@)?"""
        return (
            NN_STRATEGY in self.opclass.operators
            and isinstance(self.structure, SPGiSTIndex)
            and self.structure.methods.supports_nn
        )

    def scan(self, op_name: str, operand: Any) -> Iterator[TupleId]:
        """TIDs of rows whose indexed value satisfies ``col <op> operand``."""
        if isinstance(self.structure, SPGiSTIndex):
            seen: set[TupleId] = set()
            for _key, tid in self.structure.search(Query(op_name, operand)):
                if tid not in seen:  # suffix extraction can repeat TIDs
                    seen.add(tid)
                    yield tid
            return
        if isinstance(self.structure, BPlusTree):
            yield from self._btree_scan(op_name, operand)
            return
        if isinstance(self.structure, RTree):
            yield from self._rtree_scan(op_name, operand)
            return
        if isinstance(self.structure, HashIndex):
            if op_name != "=":
                raise PlannerError(f"hash index cannot serve {op_name!r}")
            yield from self.structure.search(operand)
            return
        raise PlannerError(f"index {self.name} cannot serve {op_name!r}")

    def _btree_scan(self, op_name: str, operand: Any) -> Iterator[TupleId]:
        tree: BPlusTree = self.structure
        if op_name == "=":
            yield from tree.search(operand)
        elif op_name == "#=":
            for _key, tid in tree.prefix_scan(operand):
                yield tid
        elif op_name == "?=":
            for _key, tid in tree.regex_scan(operand):
                yield tid
        elif op_name == "*=":
            for _key, tid in tree.glob_scan(operand):
                yield tid
        elif op_name in ("<", "<="):
            for key, tid in tree.scan_all():
                if key > operand or (key == operand and op_name == "<"):
                    break
                yield tid
        elif op_name in (">", ">="):
            for key, tid in tree.range_scan(operand, _TOP):
                if key == operand and op_name == ">":
                    continue
                yield tid
        else:
            raise PlannerError(f"btree index cannot serve {op_name!r}")

    def _rtree_scan(self, op_name: str, operand: Any) -> Iterator[TupleId]:
        tree: RTree = self.structure
        if op_name in ("@", "="):
            for _key, tid in tree.search_exact(operand):
                yield tid
        elif op_name in ("^", "&&"):
            for _key, tid in tree.range_search(operand):
                yield tid
        else:
            raise PlannerError(f"rtree index cannot serve {op_name!r}")

    def nn_scan(self, operand: Any) -> Iterator[TupleId]:
        """TIDs in non-decreasing distance from ``operand`` (operator @@)."""
        if not self.supports_nn():
            raise PlannerError(f"index {self.name} does not support NN search")
        seen: set[TupleId] = set()
        for _distance, _key, tid in self.structure.nn_search(operand):
            if tid not in seen:
                seen.add(tid)
                yield tid

    # -- costing inputs -------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.structure.num_pages

    @property
    def page_height(self) -> int:
        if isinstance(self.structure, SPGiSTIndex):
            return self.structure.statistics().max_page_height
        return self.structure.height


class _Top:
    """A value greater than every string/number (open upper bound)."""

    def __gt__(self, other: Any) -> bool:  # pragma: no cover - trivial
        return True

    def __lt__(self, other: Any) -> bool:  # pragma: no cover - trivial
        return False


_TOP = _Top()


class Table:
    """A named heap relation with typed columns and secondary indexes."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        buffer: BufferPool,
        catalog: SystemCatalog,
    ) -> None:
        self.name = name
        self.columns = columns
        self.buffer = buffer
        self.catalog = catalog
        self.heap = HeapFile(buffer)
        self.indexes: dict[str, TableIndex] = {}
        self._column_positions = {col.name: i for i, col in enumerate(columns)}
        self._distinct_counts: dict[str, int] = {}

    # -- schema ------------------------------------------------------------------

    def column_index(self, column_name: str) -> int:
        """Position of ``column_name`` in this table's rows."""
        try:
            return self._column_positions[column_name]
        except KeyError:
            raise CatalogError(
                f"table {self.name} has no column {column_name!r}"
            ) from None

    def column(self, column_name: str) -> Column:
        """The Column object for ``column_name``."""
        return self.columns[self.column_index(column_name)]

    def create_index(
        self,
        index_name: str,
        column_name: str,
        using: str = "SP_GiST",
        opclass_name: str | None = None,
        **opclass_kwargs: Any,
    ) -> TableIndex:
        """CREATE INDEX: build over existing rows (the ``ambuild`` routine)."""
        if index_name in self.indexes:
            raise CatalogError(f"index {index_name!r} already exists")
        column_index = self.column_index(column_name)
        column = self.columns[column_index]
        if opclass_name is not None:
            opclass = self.catalog.opclass(opclass_name)
        else:
            opclass = self.catalog.default_opclass(using, column.type_name)
        if opclass.access_method.lower() != using.lower():
            raise CatalogError(
                f"operator class {opclass.name} belongs to access method "
                f"{opclass.access_method}, not {using}"
            )
        if opclass.for_type != column.type_name:
            raise CatalogError(
                f"operator class {opclass.name} is for type "
                f"{opclass.for_type}, but column {column_name} is "
                f"{column.type_name}"
            )
        index = TableIndex(
            index_name, self, column, column_index, opclass, **opclass_kwargs
        )
        for tid, row in self.heap.scan():
            index.insert_row(tid, row)
        if isinstance(index.structure, SPGiSTIndex):
            index.structure.repack()  # spgistbuild finishes with clustering
        self.indexes[index_name] = index
        return index

    def drop_index(self, index_name: str) -> None:
        """DROP INDEX: detach and forget the named index."""
        if index_name not in self.indexes:
            raise CatalogError(f"index {index_name!r} does not exist")
        del self.indexes[index_name]

    # -- DML ----------------------------------------------------------------------------

    def insert(self, row: tuple) -> TupleId:
        """Insert one row into the heap and every index."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} != table arity {len(self.columns)}"
            )
        tid = self.heap.insert(row)
        for index in self.indexes.values():
            index.insert_row(tid, row)
        return tid

    def insert_many(self, rows: list[tuple]) -> list[TupleId]:
        """Insert a batch of rows: heap appends first, then each index once.

        Row-for-row equivalent to repeated :meth:`insert`, but every index
        sees the whole batch in a single :meth:`TableIndex.insert_rows`
        call, which is what lets SP-GiST amortize descent and page-write
        work across the batch.
        """
        for row in rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row arity {len(row)} != table arity {len(self.columns)}"
                )
        pairs = [(self.heap.insert(row), row) for row in rows]
        for index in self.indexes.values():
            index.insert_rows(pairs)
        return [tid for tid, _row in pairs]

    def purge_caches(self) -> None:
        """Drop every index's deserialized-node cache (quarantine hook)."""
        for index in self.indexes.values():
            index.purge_node_cache()

    def delete_tid(self, tid: TupleId) -> tuple:
        """Delete one row by TID from the heap and every index."""
        row = self.heap.fetch(tid)
        if row is None:
            raise PlannerError(f"tuple {tid} is already deleted")
        for index in self.indexes.values():
            index.delete_row(tid, row)
        return self.heap.delete(tid)

    def fetch(self, tid: TupleId) -> tuple | None:
        """The row at ``tid`` (None when tombstoned)."""
        return self.heap.fetch(tid)

    def scan(self) -> Iterator[tuple[TupleId, tuple]]:
        """Sequential scan over all live rows."""
        return self.heap.scan()

    # -- statistics ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def heap_pages(self) -> int:
        return self.heap.num_pages

    def analyze(self) -> dict[str, int]:
        """Gather per-column distinct counts (PostgreSQL's ANALYZE).

        One heap scan; results are cached and consulted by the planner's
        selectivity estimation until the next analyze.
        """
        positions = range(len(self.columns))
        values: list[set] = [set() for _ in positions]
        for _tid, row in self.heap.scan():
            for i in positions:
                values[i].add(row[i])
        self._distinct_counts = {
            column.name: len(values[i]) for i, column in enumerate(self.columns)
        }
        return dict(self._distinct_counts)

    def stats(self, column_name: str | None = None) -> TableStats:
        """Row count plus the analyzed distinct count of ``column_name``.

        Never scans — returns ``distinct_count=None`` (falling back to the
        planner's default selectivities) until :meth:`analyze` has run.
        """
        distinct = None
        if column_name is not None:
            distinct = self._distinct_counts.get(column_name)
        return TableStats(row_count=len(self.heap), distinct_count=distinct)
