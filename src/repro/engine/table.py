"""Heap-backed tables with catalog-driven secondary indexes.

A :class:`Table` stores rows (tuples) in a :class:`HeapFile` and maintains
any number of indexes created through operator classes, exactly like the
paper's Table 6 DDL::

    CREATE TABLE word_data (name VARCHAR(50), id INT);
    CREATE INDEX sp_trie_index ON word_data
        USING SP_GiST (name SP_GiST_trie);

Index rows carry heap TupleIds as values; scans return TIDs which the
executor resolves back to rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.baselines.bptree import BPlusTree
from repro.baselines.hash import HashIndex
from repro.baselines.rtree import RTree
from repro.core.external import Query
from repro.core.tree import SPGiSTIndex
from repro.engine.catalog import SystemCatalog
from repro.engine.opclass import NN_STRATEGY, OperatorClass
from repro.engine.selectivity import TableStats
from repro.engine.txn import (
    Snapshot,
    Transaction,
    TransactionManager,
    XID_FROZEN,
)
from repro.errors import CatalogError, PlannerError
from repro.obs import METRICS
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, TupleId

_VACUUM_RUNS = METRICS.counter(
    "vacuum_runs_total", "Table-level VACUUM passes completed"
)
_VACUUM_VERSIONS = METRICS.counter(
    "vacuum_versions_pruned_total",
    "Dead heap tuple versions reclaimed by VACUUM",
)
_VACUUM_INDEX_ENTRIES = METRICS.counter(
    "vacuum_index_entries_pruned_total",
    "Index entries removed for dead heap versions",
)
_VACUUM_PAGES_TRUNCATED = METRICS.counter(
    "vacuum_pages_truncated_total",
    "Trailing all-empty heap pages released by VACUUM",
)


@dataclass(frozen=True)
class Column:
    """One table column: a name and a catalog type name."""

    name: str
    type_name: str  # "varchar", "int", "float", "point", "lseg"


class TableIndex:
    """One secondary index over one column of a table."""

    def __init__(
        self,
        name: str,
        table: "Table",
        column: Column,
        column_index: int,
        opclass: OperatorClass,
        **opclass_kwargs: Any,
    ) -> None:
        self.name = name
        self.table = table
        self.column = column
        self.column_index = column_index
        self.opclass = opclass
        self.access_method = opclass.access_method.lower()
        self.key_extractor = opclass.key_extractor
        self.structure = self._make_structure(table.buffer, **opclass_kwargs)
        #: Set by the executor when a scan hit corruption in this index;
        #: the planner stops choosing quarantined indexes until the flag is
        #: cleared (e.g. after a REINDEX-style rebuild).
        self.quarantined = False

    def _make_structure(self, buffer: BufferPool, **kwargs: Any) -> Any:
        if self.access_method == "sp_gist":
            return SPGiSTIndex(buffer, self.opclass.make_methods(**kwargs),
                               name=self.name)
        if self.access_method == "btree":
            return BPlusTree(buffer, name=self.name)
        if self.access_method == "rtree":
            return RTree(buffer, name=self.name)
        if self.access_method == "hash":
            return HashIndex(buffer, name=self.name)
        raise CatalogError(
            f"access method {self.opclass.access_method!r} cannot back an index"
        )

    # -- maintenance ------------------------------------------------------------

    def _keys_of(self, value: Any) -> list[Any]:
        if self.key_extractor is None:
            return [value]
        return list(self.key_extractor(value))

    def insert_row(self, tid: TupleId, row: tuple) -> None:
        """Index the column value(s) of one new heap row."""
        value = row[self.column_index]
        for key in self._keys_of(value):
            self.structure.insert(key, tid)

    def insert_rows(self, pairs: list[tuple[TupleId, tuple]]) -> None:
        """Index a batch of new heap rows in one structure call.

        SP-GiST indexes take :meth:`SPGiSTIndex.insert_many` (the batched
        hot path); other access methods fall back to per-key inserts.
        """
        items = []
        for tid, row in pairs:
            value = row[self.column_index]
            for key in self._keys_of(value):
                items.append((key, tid))
        if isinstance(self.structure, SPGiSTIndex):
            self.structure.insert_many(items)
        else:
            for key, tid in items:
                self.structure.insert(key, tid)

    def purge_node_cache(self) -> None:
        """Drop this index's deserialized-node cache, if it has one."""
        purge = getattr(self.structure, "purge_node_cache", None)
        if purge is not None:
            purge()

    def delete_row(self, tid: TupleId, row: tuple) -> None:
        """Remove one heap row's entries from the index."""
        value = row[self.column_index]
        for key in set(self._keys_of(value)):
            self.structure.delete(key, tid)

    def bulk_delete_rows(self, dead: list[tuple[TupleId, tuple]]) -> int:
        """Remove every entry pointing at a dead row (``ambulkdelete``).

        SP-GiST indexes take one full :meth:`SPGiSTIndex.bulk_delete` walk
        with a TID-set predicate — exactly how PostgreSQL hands the
        dead-TID list to the access method during VACUUM. Other access
        methods fall back to per-row deletes. Returns the number of
        logical entries removed.
        """
        if not dead:
            return 0
        if isinstance(self.structure, SPGiSTIndex):
            tids = {tid for tid, _row in dead}
            return self.structure.bulk_delete(lambda _key, tid: tid in tids)
        removed = 0
        for tid, row in dead:
            self.delete_row(tid, row)
            removed += 1
        return removed

    # -- scans -----------------------------------------------------------------------

    def supports(self, op_name: str) -> bool:
        """Can this index serve ``op_name`` (is it in the opclass)?"""
        return self.opclass.supports_operator(op_name)

    def supports_nn(self) -> bool:
        """Can this index stream results by distance (operator @@)?"""
        return (
            NN_STRATEGY in self.opclass.operators
            and isinstance(self.structure, SPGiSTIndex)
            and self.structure.methods.supports_nn
        )

    def scan(self, op_name: str, operand: Any) -> Iterator[TupleId]:
        """TIDs of rows whose indexed value satisfies ``col <op> operand``."""
        if isinstance(self.structure, SPGiSTIndex):
            seen: set[TupleId] = set()
            for _key, tid in self.structure.search(Query(op_name, operand)):
                if tid not in seen:  # suffix extraction can repeat TIDs
                    seen.add(tid)
                    yield tid
            return
        if isinstance(self.structure, BPlusTree):
            yield from self._btree_scan(op_name, operand)
            return
        if isinstance(self.structure, RTree):
            yield from self._rtree_scan(op_name, operand)
            return
        if isinstance(self.structure, HashIndex):
            if op_name != "=":
                raise PlannerError(f"hash index cannot serve {op_name!r}")
            yield from self.structure.search(operand)
            return
        raise PlannerError(f"index {self.name} cannot serve {op_name!r}")

    def _btree_scan(self, op_name: str, operand: Any) -> Iterator[TupleId]:
        tree: BPlusTree = self.structure
        if op_name == "=":
            yield from tree.search(operand)
        elif op_name == "#=":
            for _key, tid in tree.prefix_scan(operand):
                yield tid
        elif op_name == "?=":
            for _key, tid in tree.regex_scan(operand):
                yield tid
        elif op_name == "*=":
            for _key, tid in tree.glob_scan(operand):
                yield tid
        elif op_name in ("<", "<="):
            for key, tid in tree.scan_all():
                if key > operand or (key == operand and op_name == "<"):
                    break
                yield tid
        elif op_name in (">", ">="):
            for key, tid in tree.range_scan(operand, _TOP):
                if key == operand and op_name == ">":
                    continue
                yield tid
        else:
            raise PlannerError(f"btree index cannot serve {op_name!r}")

    def _rtree_scan(self, op_name: str, operand: Any) -> Iterator[TupleId]:
        tree: RTree = self.structure
        if op_name in ("@", "="):
            for _key, tid in tree.search_exact(operand):
                yield tid
        elif op_name in ("^", "&&"):
            for _key, tid in tree.range_search(operand):
                yield tid
        else:
            raise PlannerError(f"rtree index cannot serve {op_name!r}")

    def nn_scan(self, operand: Any) -> Iterator[TupleId]:
        """TIDs in non-decreasing distance from ``operand`` (operator @@)."""
        if not self.supports_nn():
            raise PlannerError(f"index {self.name} does not support NN search")
        seen: set[TupleId] = set()
        for _distance, _key, tid in self.structure.nn_search(operand):
            if tid not in seen:
                seen.add(tid)
                yield tid

    # -- costing inputs -------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.structure.num_pages

    @property
    def page_height(self) -> int:
        if isinstance(self.structure, SPGiSTIndex):
            return self.structure.statistics().max_page_height
        return self.structure.height


class _Top:
    """A value greater than every string/number (open upper bound)."""

    def __gt__(self, other: Any) -> bool:  # pragma: no cover - trivial
        return True

    def __lt__(self, other: Any) -> bool:  # pragma: no cover - trivial
        return False


_TOP = _Top()


@dataclass(frozen=True)
class VacuumStats:
    """What one VACUUM pass reclaimed (the ``VACUUM VERBOSE`` analogue)."""

    versions_pruned: int
    index_entries_pruned: int
    pages_truncated: int
    pages: int
    pages_needed: int


class Table:
    """A named heap relation with typed columns and secondary indexes."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        buffer: BufferPool,
        catalog: SystemCatalog,
        txn: TransactionManager | None = None,
    ) -> None:
        self.name = name
        self.columns = columns
        self.buffer = buffer
        self.catalog = catalog
        #: The cluster's transaction manager. ``None`` keeps the table in
        #: the legacy single-version mode (every tuple frozen, physical
        #: deletes); with a manager attached, scans and fetches filter by
        #: snapshot visibility.
        self.txn = txn
        self.heap = HeapFile(buffer)
        self.indexes: dict[str, TableIndex] = {}
        self._column_positions = {col.name: i for i, col in enumerate(columns)}
        self._distinct_counts: dict[str, int] = {}

    # -- schema ------------------------------------------------------------------

    def column_index(self, column_name: str) -> int:
        """Position of ``column_name`` in this table's rows."""
        try:
            return self._column_positions[column_name]
        except KeyError:
            raise CatalogError(
                f"table {self.name} has no column {column_name!r}"
            ) from None

    def column(self, column_name: str) -> Column:
        """The Column object for ``column_name``."""
        return self.columns[self.column_index(column_name)]

    def create_index(
        self,
        index_name: str,
        column_name: str,
        using: str = "SP_GiST",
        opclass_name: str | None = None,
        **opclass_kwargs: Any,
    ) -> TableIndex:
        """CREATE INDEX: build over existing rows (the ``ambuild`` routine)."""
        if index_name in self.indexes:
            raise CatalogError(f"index {index_name!r} already exists")
        column_index = self.column_index(column_name)
        column = self.columns[column_index]
        if opclass_name is not None:
            opclass = self.catalog.opclass(opclass_name)
        else:
            opclass = self.catalog.default_opclass(using, column.type_name)
        if opclass.access_method.lower() != using.lower():
            raise CatalogError(
                f"operator class {opclass.name} belongs to access method "
                f"{opclass.access_method}, not {using}"
            )
        if opclass.for_type != column.type_name:
            raise CatalogError(
                f"operator class {opclass.name} is for type "
                f"{opclass.for_type}, but column {column_name} is "
                f"{column.type_name}"
            )
        index = TableIndex(
            index_name, self, column, column_index, opclass, **opclass_kwargs
        )
        for tid, row in self.heap.scan():
            index.insert_row(tid, row)
        if isinstance(index.structure, SPGiSTIndex):
            index.structure.repack()  # spgistbuild finishes with clustering
        self.indexes[index_name] = index
        return index

    def drop_index(self, index_name: str) -> None:
        """DROP INDEX: detach and forget the named index."""
        if index_name not in self.indexes:
            raise CatalogError(f"index {index_name!r} does not exist")
        del self.indexes[index_name]

    # -- DML ----------------------------------------------------------------------------

    def insert(self, row: tuple, txn: Transaction | None = None) -> TupleId:
        """Insert one row into the heap and every index.

        With ``txn``, the new version carries the transaction's xid as
        ``xmin`` — invisible to other snapshots until the commit verdict
        lands in the clog. Index entries are created immediately (index
        entries point at all versions; readers filter by visibility).
        """
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} != table arity {len(self.columns)}"
            )
        tid = self.heap.insert(row, xmin=txn.xid if txn else XID_FROZEN)
        for index in self.indexes.values():
            index.insert_row(tid, row)
        return tid

    def insert_many(
        self, rows: list[tuple], txn: Transaction | None = None
    ) -> list[TupleId]:
        """Insert a batch of rows: heap appends first, then each index once.

        Row-for-row equivalent to repeated :meth:`insert`, but every index
        sees the whole batch in a single :meth:`TableIndex.insert_rows`
        call, which is what lets SP-GiST amortize descent and page-write
        work across the batch.
        """
        for row in rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row arity {len(row)} != table arity {len(self.columns)}"
                )
        xmin = txn.xid if txn else XID_FROZEN
        pairs = [(self.heap.insert(row, xmin=xmin), row) for row in rows]
        for index in self.indexes.values():
            index.insert_rows(pairs)
        return [tid for tid, _row in pairs]

    def purge_caches(self) -> None:
        """Drop every index's deserialized-node cache (quarantine hook)."""
        for index in self.indexes.values():
            index.purge_node_cache()

    def delete_tid(self, tid: TupleId) -> tuple:
        """Physically delete one row by TID from the heap and every index.

        The legacy non-transactional path: index entries are removed
        immediately and the version is gone. The MVCC path is
        :meth:`mvcc_delete`.
        """
        row = self.heap.fetch(tid)
        if row is None:
            raise PlannerError(f"tuple {tid} is already deleted")
        for index in self.indexes.values():
            index.delete_row(tid, row)
        return self.heap.delete(tid)

    def mvcc_delete(self, tid: TupleId, txn: Transaction) -> tuple:
        """DELETE under MVCC: stamp ``xmax``; indexes are left alone.

        The version (and its index entries) survives for older snapshots;
        VACUUM reclaims both once the deleter's commit passes the horizon.
        Raises :class:`~repro.errors.TxnError` when another transaction
        already claimed the tuple (first-updater-wins).
        """
        assert self.txn is not None, "mvcc_delete needs a transaction manager"
        tup = self.heap.tuple_at(tid)
        if tup is None:
            raise PlannerError(f"tuple {tid} is already deleted")
        self.txn.check_delete_conflict(tup, txn)
        record = self.heap.mark_deleted(tid, txn.xid)
        txn.touched.append(tid)
        return record

    def mvcc_update(
        self, tid: TupleId, new_row: tuple, txn: Transaction
    ) -> TupleId:
        """UPDATE under MVCC: expire the old version, insert the new one.

        Both halves carry the same xid, so they become visible (or vanish
        on rollback) atomically — one transaction, exactly as the SQL
        layer's UPDATE statement requires. The new version's index entries
        are inserted now; the old version's are reclaimed by VACUUM.
        """
        if len(new_row) != len(self.columns):
            raise ValueError(
                f"row arity {len(new_row)} != table arity {len(self.columns)}"
            )
        self.mvcc_delete(tid, txn)
        new_tid = self.insert(new_row, txn=txn)
        txn.touched.append(new_tid)
        return new_tid

    def update_tid(self, tid: TupleId, new_row: tuple) -> None:
        """Non-transactional in-place update with index maintenance.

        Replaces the record at ``tid`` and atomically swaps the index
        entries from the old key to the new one. The transactional SQL
        UPDATE goes through :meth:`mvcc_update` instead.
        """
        if len(new_row) != len(self.columns):
            raise ValueError(
                f"row arity {len(new_row)} != table arity {len(self.columns)}"
            )
        old_row = self.heap.fetch(tid)
        if old_row is None:
            raise PlannerError(f"tuple {tid} is deleted")
        self.heap.update(tid, new_row)
        for index in self.indexes.values():
            old_value = old_row[index.column_index]
            new_value = new_row[index.column_index]
            if old_value == new_value:
                continue
            index.delete_row(tid, old_row)
            index.insert_row(tid, new_row)

    def current_snapshot(self) -> Snapshot | None:
        """A fresh read snapshot, or None without a transaction manager."""
        if self.txn is None:
            return None
        return self.txn.read_snapshot()

    def fetch(
        self, tid: TupleId, snapshot: Snapshot | None = None
    ) -> tuple | None:
        """The row at ``tid`` as ``snapshot`` sees it (None if invisible).

        Without an explicit snapshot, a table with a transaction manager
        reads through a fresh one; a manager-less table returns any stored
        version (the legacy single-version behaviour).
        """
        tup = self.heap.tuple_at(tid)
        if tup is None:
            return None
        if snapshot is None:
            snapshot = self.current_snapshot()
        if snapshot is not None and not snapshot.tuple_visible(tup):
            return None
        return tup.record

    def fetch_many(
        self, tids: list[TupleId], snapshot: Snapshot | None = None
    ) -> list[tuple[TupleId, tuple]]:
        """Resolve a batch of TIDs to visible rows, preserving TID order.

        The index-scan half of the batch executor: one visibility check
        pass over the whole batch instead of a :meth:`fetch` call per TID.
        Invisible and tombstoned tuples are dropped (their TIDs simply do
        not appear in the result). Heap pages are buffer-resident after
        the first slot touch, so resolving slot-by-slot within the batch
        costs one ``tuple_at`` each but no extra page traffic.
        """
        if snapshot is None:
            snapshot = self.current_snapshot()
        tuple_at = self.heap.tuple_at
        if snapshot is None:
            return [
                (tid, tup.record)
                for tid, tup in ((tid, tuple_at(tid)) for tid in tids)
                if tup is not None
            ]
        stamp_visible = snapshot.stamp_visible
        verdicts: dict[tuple[int, int], bool] = {}
        out: list[tuple[TupleId, tuple]] = []
        for tid in tids:
            tup = tuple_at(tid)
            if tup is None:
                continue
            stamp = (tup.xmin, tup.xmax)
            verdict = verdicts.get(stamp)
            if verdict is None:
                verdict = verdicts[stamp] = stamp_visible(*stamp)
            if verdict:
                out.append((tid, tup.record))
        return out

    def scan(
        self, snapshot: Snapshot | None = None
    ) -> Iterator[tuple[TupleId, tuple]]:
        """Snapshot-consistent sequential scan over visible rows."""
        for page in self.scan_batches(snapshot):
            yield from page

    def scan_batches(
        self, snapshot: Snapshot | None = None
    ) -> Iterator[list[tuple[TupleId, tuple]]]:
        """Sequential scan yielding one heap page of visible rows at a time.

        The seq-scan half of the batch executor: visibility runs over the
        whole page's slot array with verdicts memoized per distinct
        ``(xmin, xmax)`` stamp (see :meth:`Snapshot.stamp_visible`), so
        the per-tuple cost is a dict probe rather than a full
        ``HeapTupleSatisfiesMVCC`` walk plus a generator resume. Pages
        may yield empty lists (all slots dead to the snapshot); the
        executor re-chunks pages into fixed-size row batches anyway.
        """
        if snapshot is None:
            snapshot = self.current_snapshot()
        if snapshot is None:
            for page in self.heap.scan_version_pages():
                yield [(tid, tup.record) for tid, tup in page]
            return
        stamp_visible = snapshot.stamp_visible
        verdicts: dict[tuple[int, int], bool] = {}
        for page in self.heap.scan_version_pages():
            for stamp in {(tup.xmin, tup.xmax) for _tid, tup in page}:
                if stamp not in verdicts:
                    verdicts[stamp] = stamp_visible(*stamp)
            yield [
                (tid, tup.record)
                for tid, tup in page
                if verdicts[tup.xmin, tup.xmax]
            ]

    # -- vacuum ----------------------------------------------------------------------------

    def vacuum(self, only_tids: set[TupleId] | None = None) -> "VacuumStats":
        """Reclaim versions dead to every snapshot (PostgreSQL's lazy VACUUM).

        Order matters, exactly as in PostgreSQL: first every index entry
        pointing at a dead TID is removed (``ambulkdelete``), only then is
        the heap slot reclaimed for reuse, and finally trailing all-empty
        pages are truncated so ``num_pages`` can shrink. With a transaction
        manager attached, "dead" is decided by
        :meth:`TransactionManager.tuple_dead` against the oldest-snapshot
        horizon; without one, there is nothing to reclaim (legacy deletes
        are already physical). ``only_tids`` restricts the pass to the
        given candidates (eager pruning after an autocommit statement).
        """
        dead: list[tuple[TupleId, tuple]] = []
        if self.txn is not None:
            for tid, tup in self.heap.scan_versions():
                if only_tids is not None and tid not in only_tids:
                    continue
                if self.txn.tuple_dead(tup):
                    dead.append((tid, tup.record))
        index_entries = 0
        for index in self.indexes.values():
            index_entries += index.bulk_delete_rows(dead)
        for tid, _row in dead:
            self.heap.reclaim(tid)
        pages_truncated = self.heap.truncate_trailing_empty_pages()
        pages, pages_needed = self.heap.vacuum_page_stats()
        _VACUUM_RUNS.inc()
        _VACUUM_VERSIONS.inc(len(dead))
        _VACUUM_INDEX_ENTRIES.inc(index_entries)
        _VACUUM_PAGES_TRUNCATED.inc(pages_truncated)
        return VacuumStats(
            versions_pruned=len(dead),
            index_entries_pruned=index_entries,
            pages_truncated=pages_truncated,
            pages=pages,
            pages_needed=pages_needed,
        )

    def heap_stats(self) -> list[tuple[str, int]]:
        """(stat, value) rows for the ``repro_heap_stats('t')`` SRF."""
        pages, pages_needed = self.heap.vacuum_page_stats()
        snapshot = self.current_snapshot()
        if snapshot is None:
            visible = len(self.heap)
        else:
            visible = sum(
                1
                for _tid, tup in self.heap.scan_versions()
                if snapshot.tuple_visible(tup)
            )
        return [
            ("versions", len(self.heap)),
            ("visible_rows", visible),
            ("dead_versions", len(self.heap) - visible),
            ("pages", pages),
            ("pages_needed", pages_needed),
            ("free_slots", self.heap.free_slot_count),
        ]

    # -- statistics ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def heap_pages(self) -> int:
        return self.heap.num_pages

    def analyze(self) -> dict[str, int]:
        """Gather per-column distinct counts (PostgreSQL's ANALYZE).

        One heap scan over currently-visible rows; results are cached and
        consulted by the planner's selectivity estimation until the next
        analyze.
        """
        positions = range(len(self.columns))
        values: list[set] = [set() for _ in positions]
        for _tid, row in self.scan():
            for i in positions:
                values[i].add(row[i])
        self._distinct_counts = {
            column.name: len(values[i]) for i, column in enumerate(self.columns)
        }
        return dict(self._distinct_counts)

    def stats(self, column_name: str | None = None) -> TableStats:
        """Row count plus the analyzed distinct count of ``column_name``.

        Never scans — returns ``distinct_count=None`` (falling back to the
        planner's default selectivities) until :meth:`analyze` has run.
        """
        distinct = None
        if column_name is not None:
            distinct = self._distinct_counts.get(column_name)
        return TableStats(row_count=len(self.heap), distinct_count=distinct)
