"""SP-GiST core: the generalized index engine for space-partitioning trees.

This package is the paper's primary contribution. The *internal methods*
(insert, search, delete, bulk build, incremental NN search) live in
:class:`SPGiSTIndex` and are shared by every instantiation; the differences
between tries, kd-trees, and quadtrees are captured entirely by the
*interface parameters* (:class:`SPGiSTConfig`) and the *external methods*
(:class:`ExternalMethods` subclasses in :mod:`repro.indexes`).
"""

from repro.core.config import PathShrink, SPGiSTConfig
from repro.core.node import (
    BLANK,
    InnerNode,
    LeafNode,
    NodeRef,
    Entry,
)
from repro.core.external import (
    ChooseResult,
    AddEntry,
    Descend,
    DescendMultiple,
    SplitPrefix,
    ExternalMethods,
    PickSplitResult,
    Query,
)
from repro.core.tree import SPGiSTIndex
from repro.core.stats import TreeStatistics

__all__ = [
    "PathShrink",
    "SPGiSTConfig",
    "BLANK",
    "InnerNode",
    "LeafNode",
    "NodeRef",
    "Entry",
    "ChooseResult",
    "AddEntry",
    "Descend",
    "DescendMultiple",
    "SplitPrefix",
    "ExternalMethods",
    "PickSplitResult",
    "Query",
    "SPGiSTIndex",
    "TreeStatistics",
]
