"""The SP-GiST external-method interface (developer-supplied methods).

The paper's framework asks an index developer for two methods — PickSplit()
and Consistent() — plus NN_Consistent() for nearest-neighbour support and a
parameter block (Section 3.1, Table 1). This module defines that contract.

One refinement relative to the paper's prose: tree *navigation during
insertion* needs slightly richer answers than a boolean Consistent() — it
must be able to say "descend here", "create this missing partition", or
"the new key conflicts with my node predicate, split it" (the patricia-trie
prefix split of Figure 1c). We expose that as :meth:`ExternalMethods.choose`
returning one of three result types, which is exactly how the production
SP-GiST in PostgreSQL ≥ 9.2 (spgMatchNode / spgAddNode / spgSplitTuple)
later formalized the same need. Search-side navigation remains the paper's
boolean ``consistent``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.config import SPGiSTConfig


@dataclass(frozen=True)
class Query:
    """A search predicate handed to Consistent(): an operator and operand.

    Operator strings follow the paper's Table 3/4 semantics, e.g. ``"="``
    (equality), ``"#="`` (prefix), ``"?="`` (regular expression with the
    ``?`` wildcard), ``"@"`` (point equality), ``"^"`` (inside box),
    ``"@="`` (substring). NN search does not use Query — it has its own
    entry point.
    """

    op: str
    operand: Any


# --------------------------------------------------------------------------
# choose() results (insert-side navigation)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Descend:
    """Follow the existing entry at ``entry_index``.

    ``level_delta`` is how many decomposition levels the step consumes — 1
    for a plain partition step, ``len(prefix) + 1``-style values for
    path-shrunk tries (the paper's PickSplit "Update level" rule applies on
    descent too).
    """

    entry_index: int
    level_delta: int = 1


@dataclass(frozen=True)
class DescendMultiple:
    """Follow several entries at once (spanning objects, e.g. PMR segments)."""

    entry_indexes: tuple[int, ...]
    level_delta: int = 1


@dataclass(frozen=True)
class AddEntry:
    """No existing partition accepts the key: create entry ``predicate``.

    The core adds the entry (pointing at a fresh empty leaf) and descends
    into it. Only legal when NodeShrink pruned the partition earlier or the
    partition set is open-ended (trie letters).
    """

    predicate: Any
    level_delta: int = 1


@dataclass(frozen=True)
class SplitPrefix:
    """The key conflicts with this inner node's own predicate.

    Used by TreeShrink tries: the node's prefix ``"abc"`` cannot host
    ``"abX..."``. The core rebuilds locally: a new inner node with predicate
    ``new_prefix`` (the common part) gets two entries — one with predicate
    ``old_entry_predicate`` pointing at the demoted old node (whose predicate
    the external method rewrites to ``old_node_predicate``), and the key is
    then re-chosen against the new node.
    """

    new_prefix: Any
    old_entry_predicate: Any
    old_node_predicate: Any


ChooseResult = Descend | DescendMultiple | AddEntry | SplitPrefix


# --------------------------------------------------------------------------
# PickSplit() result
# --------------------------------------------------------------------------


@dataclass
class PickSplitResult:
    """Outcome of one space decomposition (paper Table 1, PickSplit rows).

    - ``node_predicate``: predicate installed on the new inner node (common
      prefix, discriminator point, region box, or None).
    - ``partitions``: ``(entry_predicate, items)`` pairs; empty partitions
      are kept only when the instantiation's NodeShrink is False.
    - ``level_delta``: decomposition levels consumed by this split (1 +
      len(common prefix) for TreeShrink tries, else 1).
    - ``recurse_overfull``: when True the core re-splits any partition still
      exceeding BucketSize (the paper's "If any of the partitions is still
      over full Return True"); the PMR quadtree sets False — its rule splits
      a block exactly once per violating insertion.
    - ``progress``: set False when the decomposition cannot separate the
      items no matter how deep it goes (e.g. all keys identical — the trie's
      all-blank partition). The core then lets the leaf spill past
      BucketSize instead of recursing forever.
    """

    node_predicate: Any
    partitions: list[tuple[Any, list[tuple[Any, Any]]]]
    level_delta: int = 1
    recurse_overfull: bool = True
    progress: bool = True


# --------------------------------------------------------------------------
# The external-method contract
# --------------------------------------------------------------------------


class ExternalMethods(abc.ABC):
    """Developer-supplied methods defining one SP-GiST instantiation.

    Subclasses provide the decomposition rule (:meth:`picksplit`), the
    navigation rules (:meth:`choose` for inserts, :meth:`consistent` /
    :meth:`leaf_consistent` for searches), optional NN distance bounds, and
    the interface-parameter block (:meth:`get_parameters`).
    """

    #: Operator names (paper Tables 3–4) this instantiation supports.
    supported_operators: tuple[str, ...] = ()

    #: The operator string whose semantics are exact key equality; the core
    #: uses it to navigate during deletes.
    equality_operator: str = "="

    #: True when one logical item may be replicated into several partitions
    #: (choose may return DescendMultiple), as the PMR quadtree does with
    #: line segments. Controls duplicate elimination in search and delete.
    spanning: bool = False

    # -- parameters -------------------------------------------------------------

    @abc.abstractmethod
    def get_parameters(self) -> SPGiSTConfig:
        """Return the interface-parameter block (paper's getparameters)."""

    # -- insertion --------------------------------------------------------------

    @abc.abstractmethod
    def choose(
        self,
        node_predicate: Any,
        entries: Sequence[Any],
        key: Any,
        level: int,
    ) -> ChooseResult:
        """Pick the partition(s) of an inner node that must hold ``key``.

        ``entries`` is the sequence of entry predicates currently present.
        Return :class:`Descend` / :class:`DescendMultiple` to follow existing
        entries, :class:`AddEntry` to materialize a missing partition, or
        :class:`SplitPrefix` when the node predicate itself conflicts.
        """

    @abc.abstractmethod
    def picksplit(
        self,
        items: Sequence[tuple[Any, Any]],
        level: int,
        parent_predicate: Any = None,
    ) -> PickSplitResult:
        """Decompose an overfull data node's items into partitions.

        ``parent_predicate`` is the predicate of the entry the leaf hangs
        under (or :meth:`initial_root_predicate` for a root leaf). Data-driven
        trees ignore it; space-driven trees (quadtrees) read the region to
        subdivide from it.
        """

    def initial_root_predicate(self) -> Any:
        """Region predicate assumed for a root-level leaf before any split.

        Space-driven instantiations return the world box; data-driven ones
        keep the default ``None``.
        """
        return None

    # -- search -----------------------------------------------------------------

    @abc.abstractmethod
    def consistent(
        self,
        node_predicate: Any,
        entry_predicate: Any,
        query: Query,
        level: int,
    ) -> bool:
        """May any key under this entry satisfy ``query``? (paper Consistent)."""

    @abc.abstractmethod
    def leaf_consistent(self, key: Any, query: Query, level: int) -> bool:
        """Does the stored ``key`` satisfy ``query``?"""

    # -- nearest-neighbour (paper Section 5) ------------------------------------

    def nn_inner_distance(
        self,
        query: Any,
        node_predicate: Any,
        entry_predicate: Any,
        level: int,
        parent_state: Any,
    ) -> tuple[float, Any]:
        """NN_Consistent for inner entries.

        Return ``(lower_bound, child_state)``: an admissible lower bound on
        the distance from ``query`` to any key under the entry, plus the
        state forwarded to the entry's children (the paper notes the trie
        must remember the parent's accumulated distance/prefix — that is
        ``child_state``). Default: NN not supported.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement NN search"
        )

    def nn_leaf_distance(self, query: Any, key: Any) -> float:
        """NN_Consistent for data items: exact query-to-key distance."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement NN search"
        )

    @property
    def supports_nn(self) -> bool:
        """True when both NN_Consistent halves are overridden."""
        cls = type(self)
        return (
            cls.nn_inner_distance is not ExternalMethods.nn_inner_distance
            and cls.nn_leaf_distance is not ExternalMethods.nn_leaf_distance
        )

    # -- optional hooks -----------------------------------------------------------

    def level_delta(self, node_predicate: Any) -> int:
        """Decomposition levels consumed by descending *through* a node.

        Plain partition trees consume 1; TreeShrink tries consume
        ``len(prefix) + 1`` because the node's collapsed prefix also eats
        query positions. Search and NN traversal use this; insert descent
        gets its delta from :class:`Descend` results instead.
        """
        return 1

    def nn_initial_state(self, query: Any) -> Any:
        """Per-traversal state seeded at the root for NN search.

        The kd-tree and quadtrees use the (unbounded) region box; the trie
        uses the empty accumulated prefix. Forwarded through
        :meth:`nn_inner_distance` as ``parent_state``.
        """
        return None
