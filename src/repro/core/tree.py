"""SP-GiST internal methods: the generalized tree engine.

:class:`SPGiSTIndex` implements the framework's shared machinery — Insert(),
Search(), Delete(), bulk build, and statistics — entirely in terms of the
interface parameters and external methods of one instantiation. Nothing in
this module knows about strings, points, or segments.

Correspondence to the paper's interface routines (Table 2): ``insert`` is
``spgistinsert``, ``search`` is ``spgistbeginscan``/``spgistgettuple``,
``build`` is ``spgistbuild``, ``delete`` is ``spgistbulkdelete`` applied to a
single key, and ``statistics`` feeds ``spgistcostestimate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.costmodel import CPU_OPS
from repro.errors import IndexCorruptionError, KeyNotFoundError
from repro.obs import METRICS, span
from repro.core.clustering import (
    NodeStore,
    pack_nodes,
    repack,
    repack_subtree,
)
from repro.core.config import SPGiSTConfig
from repro.core.external import (
    AddEntry,
    Descend,
    DescendMultiple,
    ExternalMethods,
    PickSplitResult,
    Query,
    SplitPrefix,
)
from repro.core.node import Entry, InnerNode, LeafNode, NodeRef
from repro.core.stats import TreeStatistics, collect_statistics
from repro.storage.buffer import BufferPool

#: Hard cap on recursive re-splitting of one overfull partition; beyond this
#: the items spill into an overfull leaf (duplicate-heavy data).
_MAX_SPLIT_DEPTH = 128

# Per-operation observability: node visits attribute descent cost to the
# operation that paid it, the level histogram profiles descent depth (the
# paper's node-height experiments, figure 11), splits count restructures.
_OBS_OPS = METRICS.counter(
    "spgist_operations_total", "SP-GiST operations started", labels=("op",)
)
_OBS_INSERTS = _OBS_OPS.labels("insert")
_OBS_SEARCHES = _OBS_OPS.labels("search")
_OBS_NN = _OBS_OPS.labels("nn")
_OBS_NODES = METRICS.counter(
    "spgist_nodes_visited_total",
    "Tree nodes read during SP-GiST descents",
    labels=("op",),
)
_OBS_INSERT_NODES = _OBS_NODES.labels("insert")
_OBS_SEARCH_NODES = _OBS_NODES.labels("search")
_OBS_SPLITS = METRICS.counter(
    "spgist_leaf_splits_total", "Overfull leaves decomposed by PickSplit"
)
_OBS_DESCENT_LEVELS = METRICS.histogram(
    "spgist_descent_levels",
    "Level at which an inserted item reached its leaf",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)
_OBS_REPACK_STEPS = METRICS.counter(
    "spgist_repack_steps_total", "Online repack subtree steps completed"
)
_OBS_REPACK_NODES = METRICS.counter(
    "spgist_repack_nodes_moved_total", "Nodes relocated by online repack"
)


@dataclass(frozen=True)
class OnlineRepackStats:
    """What one ``repack_online`` call re-clustered."""

    subtrees_repacked: int
    nodes_moved: int
    pages_freed: int
    fill_before: float
    fill_after: float


class SPGiSTIndex:
    """One SP-GiST index instance: internal methods + plugged-in externals.

    Parameters
    ----------
    buffer:
        The buffer pool the index allocates its node pages from.
    methods:
        The external-method object defining the instantiation (trie,
        kd-tree, quadtree, ...).
    name:
        Optional name used in reports and error messages.
    """

    def __init__(
        self,
        buffer: BufferPool,
        methods: ExternalMethods,
        name: str = "",
        page_capacity: int | None = None,
        use_node_cache: bool = True,
    ) -> None:
        self.buffer = buffer
        self.methods = methods
        self.name = name or type(methods).__name__
        self.config: SPGiSTConfig = methods.get_parameters()
        from repro.storage.page import PAGE_CAPACITY

        self.store = NodeStore(
            buffer,
            page_capacity or PAGE_CAPACITY,
            use_node_cache=use_node_cache,
        )
        self.root: NodeRef | None = None
        self._item_count = 0

    # ------------------------------------------------------------------ insert

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert one ``(key, value)`` item (value is typically a heap TID)."""
        _OBS_INSERTS.inc()
        with span("index.insert", index=self.name):
            if self.root is None:
                self.root = self.store.create(LeafNode(items=[(key, value)]))
                self._item_count += 1
                _OBS_DESCENT_LEVELS.observe(1)
                return
            self._insert_descend(self.root, [], 0, key, value)
            self._item_count += 1

    def insert_many(self, items: Any) -> int:
        """Insert a batch of ``(key, value)`` pairs in one call.

        Result-equivalent to repeated :meth:`insert`, but batched for the
        hot path: an empty index takes the bulk decomposition plus packed
        materialization route (each final page written exactly once), and a
        populated index runs the per-item descents under a single trace
        span so batch overhead is amortized. Returns the number of items
        inserted.
        """
        pairs = list(items)
        if not pairs:
            return 0
        _OBS_INSERTS.inc(len(pairs))
        with span("index.insert_many", index=self.name):
            if self.root is None:
                plan = self._bulk_plan(pairs)
                self.root = self._materialize_packed(plan)
                self._item_count += len(pairs)
            else:
                for key, value in pairs:
                    self._insert_descend(self.root, [], 0, key, value)
                    self._item_count += 1
        return len(pairs)

    def _insert_descend(
        self,
        ref: NodeRef,
        path: list[NodeRef],
        level: int,
        key: Any,
        value: Any,
    ) -> None:
        """Walk down from ``ref`` and place the item; splits as needed.

        ``path`` holds the refs of the ancestors of ``ref`` so child-pointer
        repairs after a node relocation can find the parent.
        """
        while True:
            node = self.store.read(ref)
            _OBS_INSERT_NODES.inc()
            if node.is_leaf:
                node.items.append((key, value))
                ref = self._write_with_repair(path, ref, node)
                _OBS_DESCENT_LEVELS.observe(len(path) + 1)
                if len(node.items) > self.config.bucket_size:
                    self._split_leaf(path, ref, node, level, depth=0)
                return

            CPU_OPS.add(1)
            result = self.methods.choose(
                node.predicate, [e.predicate for e in node.entries], key, level
            )
            if isinstance(result, SplitPrefix):
                # Local restructure (Figure 1c conflict): demote this node
                # under a fresh inner node carrying the common prefix, then
                # re-choose against the replacement.
                demoted = InnerNode(
                    predicate=result.old_node_predicate,
                    entries=list(node.entries),
                )
                demoted_ref = self.store.create(demoted, near=ref)
                replacement = InnerNode(
                    predicate=result.new_prefix,
                    entries=[Entry(result.old_entry_predicate, demoted_ref)],
                )
                ref = self._write_with_repair(path, ref, replacement)
                continue

            if isinstance(result, AddEntry):
                leaf_ref = self.store.create(LeafNode(), near=ref)
                node.entries.append(Entry(result.predicate, leaf_ref))
                new_ref = self._write_with_repair(path, ref, node)
                path.append(new_ref)
                ref = leaf_ref
                level += result.level_delta
                continue

            if isinstance(result, Descend):
                entry = node.entries[result.entry_index]
                if entry.child is None:
                    entry.child = self.store.create(LeafNode(), near=ref)
                    ref = self._write_with_repair(path, ref, node)
                    entry = self.store.read(ref).entries[result.entry_index]
                path.append(ref)
                ref = entry.child
                level += result.level_delta
                continue

            if isinstance(result, DescendMultiple):
                # Spanning object (PMR segment): replicate into every target
                # partition. Branch recursively with per-branch path copies.
                for idx in result.entry_indexes:
                    entry = node.entries[idx]
                    if entry.child is None:
                        entry.child = self.store.create(LeafNode(), near=ref)
                        ref = self._write_with_repair(path, ref, node)
                        node = self.store.read(ref)
                for idx in result.entry_indexes:
                    child = self.store.read(ref).entries[idx].child
                    self._insert_descend(
                        child,
                        path + [ref],
                        level + result.level_delta,
                        key,
                        value,
                    )
                return

            raise IndexCorruptionError(
                f"choose() returned unsupported result {result!r}"
            )

    def _split_leaf(
        self,
        path: list[NodeRef],
        ref: NodeRef,
        leaf: LeafNode,
        level: int,
        depth: int,
    ) -> None:
        """Replace an overfull leaf with a PickSplit decomposition."""
        if self.config.resolution and level >= self.config.resolution:
            return  # resolution reached: leaf spills past BucketSize
        if depth > _MAX_SPLIT_DEPTH:
            return
        parent_predicate = self._predicate_above(path, ref)
        result = self.methods.picksplit(list(leaf.items), level, parent_predicate)
        if self._is_degenerate_split(result, len(leaf.items)):
            return  # inseparable items (duplicates): spill
        _OBS_SPLITS.inc()

        inner = InnerNode(predicate=result.node_predicate, entries=[])
        for predicate, part_items in result.partitions:
            if not part_items and self.config.node_shrink:
                continue
            child_ref = self.store.create(LeafNode(items=part_items), near=ref)
            inner.entries.append(Entry(predicate, child_ref))
        new_ref = self._write_with_repair(path, ref, inner)

        if not result.recurse_overfull:
            return
        child_level = level + result.level_delta
        for entry in self.store.read(new_ref).entries:
            if entry.child is None:
                continue
            child = self.store.read(entry.child)
            if child.is_leaf and len(child.items) > self.config.bucket_size:
                self._split_leaf(
                    path + [new_ref], entry.child, child, child_level, depth + 1
                )

    def _predicate_above(self, path: list[NodeRef], ref: NodeRef) -> Any:
        """Predicate of the entry pointing at ``ref`` (region for quadtrees)."""
        if not path:
            return self.methods.initial_root_predicate()
        parent = self.store.read(path[-1])
        for entry in parent.entries:
            if entry.child == ref:
                return entry.predicate
        raise IndexCorruptionError(
            f"node {ref} is not referenced by its path parent {path[-1]}"
        )

    @staticmethod
    def _is_degenerate_split(result: PickSplitResult, item_count: int) -> bool:
        """Splits that cannot make progress are rejected; the leaf spills.

        The external method signals inseparability via ``progress=False``;
        as a safety net, a split that keeps every item in one partition
        while consuming no levels is also rejected (it would loop forever).
        """
        if not result.progress:
            return True
        non_empty = [p for p in result.partitions if p[1]]
        if not non_empty:
            return True
        all_in_one = len(non_empty) == 1 and len(non_empty[0][1]) >= item_count
        return all_in_one and result.level_delta == 0

    def _write_with_repair(
        self, path: list[NodeRef], ref: NodeRef, node: Any
    ) -> NodeRef:
        """Write ``node`` back; on relocation, patch the parent's downlink."""
        new_ref = self.store.write(ref, node)
        if new_ref == ref:
            return new_ref
        if path:
            parent_ref = path[-1]
            parent = self.store.read(parent_ref)
            slot = next(
                (
                    i
                    for i, e in enumerate(parent.entries)
                    if e.child == ref
                ),
                None,
            )
            if slot is None:
                raise IndexCorruptionError(
                    f"relocated node {ref} not referenced by parent {parent_ref}"
                )
            parent.entries[slot].child = new_ref
            self.store.write(parent_ref, parent)
        elif self.root == ref:
            self.root = new_ref
        else:
            raise IndexCorruptionError(
                f"relocated node {ref} has no parent on the descent path"
            )
        return new_ref

    # ------------------------------------------------------------------ search

    def search(
        self, query: Query, dedup: bool | None = None
    ) -> Iterator[tuple[Any, Any]]:
        """Yield every ``(key, value)`` satisfying ``query``.

        ``dedup`` suppresses the duplicate reports spanning objects produce
        in space-driven trees (a PMR segment lives in every block it
        crosses); it is the index-scan layer's standard duplicate
        elimination. Defaults to on exactly for spanning instantiations.
        """
        if query.op not in self.methods.supported_operators:
            raise KeyError(
                f"{self.name} does not support operator {query.op!r}; "
                f"supported: {self.methods.supported_operators}"
            )
        if self.root is None:
            return
        if dedup is None:
            dedup = self.methods.spanning
        _OBS_SEARCHES.inc()
        yield from self._search_consistent(query, dedup)

    def _search_consistent(
        self, query: Query, dedup: bool
    ) -> Iterator[tuple[Any, Any]]:
        """The descent loop of :meth:`search`, bracketed by a trace span.

        The span opens at the first ``next()`` and closes at exhaustion (or
        when the consumer abandons the generator), so its duration is the
        scan's lifetime — lazy consumers inflate it, which is exactly what
        an operator-level trace should show.
        """
        with span("index.search", index=self.name, op=query.op):
            yield from self._search_nodes(query, dedup)

    def _search_nodes(
        self, query: Query, dedup: bool
    ) -> Iterator[tuple[Any, Any]]:
        seen: set[tuple[Any, Any]] | None = set() if dedup else None
        stack: list[tuple[NodeRef, int]] = [(self.root, 0)]
        while stack:
            ref, level = stack.pop()
            node = self.store.read(ref)
            _OBS_SEARCH_NODES.inc()
            if node.is_leaf:
                for key, value in node.items:
                    CPU_OPS.add(1)
                    if not self.methods.leaf_consistent(key, query, level):
                        continue
                    if seen is not None:
                        token = (key, value)
                        if token in seen:
                            continue
                        seen.add(token)
                    yield key, value
                continue
            delta = self.methods.level_delta(node.predicate)
            for entry in node.entries:
                if entry.child is None:
                    continue
                CPU_OPS.add(1)
                if self.methods.consistent(
                    node.predicate, entry.predicate, query, level
                ):
                    stack.append((entry.child, level + delta))

    def search_list(self, query: Query) -> list[tuple[Any, Any]]:
        """Materialized :meth:`search` (convenience for tests/benchmarks)."""
        return list(self.search(query))

    def begin_scan(self, query: Query) -> "IndexScanCursor":
        """Open a positioned cursor over ``query`` (``spgistbeginscan``).

        The cursor supports incremental ``get_next`` (``spgistgettuple``),
        ``rescan``, and ``mark``/``restore`` — the full pg_am scan contract
        of the paper's Table 2.
        """
        from repro.core.scan import IndexScanCursor

        return IndexScanCursor(self, query)

    # ------------------------------------------------------------------ NN

    def nn_search(self, query: Any) -> Iterator[tuple[float, Any, Any]]:
        """Incremental nearest-neighbour scan (paper Section 5).

        Yields ``(distance, key, value)`` in non-decreasing distance order;
        consume lazily (`itertools.islice`) for top-k semantics — every
        ``next()`` is one *get-next* call of the paper's pipeline operator.
        """
        from repro.core.nn import nn_search

        return nn_search(self, query)

    # ------------------------------------------------------------------ delete

    def delete(self, key: Any, value: Any = None) -> int:
        """Remove items matching ``key`` (and ``value`` when given).

        Returns the number of logical items removed (spanning copies of one
        item count once). Raises :class:`KeyNotFoundError` when nothing
        matches. Empty leaves and entries are pruned when NodeShrink allows.
        """
        if self.root is None:
            raise KeyNotFoundError(key)
        query = Query(self.methods.equality_operator, key)
        raw_removed = 0
        removed_pairs: set[tuple[Any, Any]] = set()
        stack: list[tuple[NodeRef, int, tuple[NodeRef, ...]]] = [
            (self.root, 0, ())
        ]
        while stack:
            ref, level, path = stack.pop()
            node = self.store.read(ref)
            if node.is_leaf:
                kept = []
                for item_key, item_value in node.items:
                    matches = self.methods.leaf_consistent(item_key, query, level)
                    if matches and (value is None or item_value == value):
                        raw_removed += 1
                        removed_pairs.add((item_key, item_value))
                        continue
                    kept.append((item_key, item_value))
                if len(kept) != len(node.items):
                    node.items = kept
                    if node.items or not self.config.node_shrink:
                        self._write_with_repair(list(path), ref, node)
                    else:
                        self._prune_empty_leaf(path, ref)
                continue
            delta = self.methods.level_delta(node.predicate)
            for entry in node.entries:
                if entry.child is None:
                    continue
                if self.methods.consistent(
                    node.predicate, entry.predicate, query, level
                ):
                    stack.append((entry.child, level + delta, path + (ref,)))
        # Spanning trees replicate one logical item into several leaves, so
        # logical removals count distinct (key, value) pairs there.
        count = len(removed_pairs) if self.methods.spanning else raw_removed
        if count == 0:
            raise KeyNotFoundError(key)
        self._item_count -= count
        return count

    def bulk_delete(self, should_delete: Any) -> int:
        """Remove every item for which ``should_delete(key, value)`` is true.

        The paper's ``spgistbulkdelete`` routine: a full walk over the data
        nodes with a caller-supplied predicate (PostgreSQL passes the
        list of dead TIDs; we generalize to a callback). Empty leaves and
        entries are pruned when NodeShrink allows. Returns the number of
        logical items removed.
        """
        if self.root is None:
            return 0
        raw_removed = 0
        removed_pairs: set[tuple[Any, Any]] = set()
        stack: list[tuple[NodeRef, tuple[NodeRef, ...]]] = [(self.root, ())]
        while stack:
            ref, path = stack.pop()
            node = self.store.read(ref)
            if node.is_leaf:
                kept = []
                for item_key, item_value in node.items:
                    if should_delete(item_key, item_value):
                        raw_removed += 1
                        removed_pairs.add((item_key, item_value))
                    else:
                        kept.append((item_key, item_value))
                if len(kept) != len(node.items):
                    node.items = kept
                    if node.items or not self.config.node_shrink:
                        self._write_with_repair(list(path), ref, node)
                    else:
                        self._prune_empty_leaf(path, ref)
                continue
            for entry in node.entries:
                if entry.child is not None:
                    stack.append((entry.child, path + (ref,)))
        count = len(removed_pairs) if self.methods.spanning else raw_removed
        self._item_count -= count
        return count

    def vacuum(self) -> None:
        """Post-delete cleanup: repack pages (``amvacuumcleanup`` analogue)."""
        self.repack()

    def _prune_empty_leaf(self, path: tuple[NodeRef, ...], ref: NodeRef) -> None:
        """Free an empty leaf and cascade entry removal up the path."""
        self.store.free(ref)
        child_ref = ref
        for parent_ref in reversed(path):
            parent = self.store.read(parent_ref)
            parent.entries = [e for e in parent.entries if e.child != child_ref]
            if parent.entries:
                self.store.write(parent_ref, parent)
                return
            self.store.free(parent_ref)
            child_ref = parent_ref
        # Every ancestor emptied out: the tree is now empty.
        self.root = None

    # ------------------------------------------------------------------ build

    def build(
        self, items: Any, cluster: bool = True
    ) -> None:
        """Bulk-load ``(key, value)`` pairs, then optionally repack pages.

        The paper's ``spgistbuild`` inserts the existing relation rows and
        relies on the clustering technique for page layout; ``cluster=True``
        finishes with the offline minimum-page-height repack.
        """
        for key, value in items:
            self.insert(key, value)
        if cluster:
            self.repack()

    def bulk_build(self, items: Any, cluster: bool = True) -> None:
        """Build the tree top-down by recursive PickSplit (bulk operations).

        The generalized bulk load in the spirit of Ghanem et al. (the
        bulk-operations companion work the paper cites): instead of one
        descent per item, the *entire* item set is decomposed with the
        instantiation's own PickSplit until partitions fit their buckets,
        materializing the final tree directly — far fewer page writes than
        insert-at-a-time. Requires an empty index. For split-once trees
        (PMR) the decomposition still stops at BucketSize or Resolution,
        the natural bulk analogue of the dynamic splitting rule.
        """
        if self.root is not None:
            raise IndexCorruptionError(
                "bulk_build requires an empty index; use build() to append"
            )
        all_items = list(items)
        if not all_items:
            return
        self._item_count = len(all_items)
        plan = self._bulk_plan(all_items)
        if cluster:
            # Packed materialization writes each node straight into its
            # final BFS-cap page — one write per page, no repack pass.
            self.root = self._materialize_packed(plan)
        else:
            self.root = self._materialize_incremental(plan)

    def _bulk_plan(self, all_items: list[tuple[Any, Any]]) -> Any:
        """Iterative top-down decomposition (safe for degenerate depths).

        Plan nodes are ``("leaf", items)`` or
        ``("inner", node_predicate, [[entry_predicate, child_plan], ...])``.
        Planning touches only local Python state — no pages are allocated
        until one of the materialize phases runs.
        """
        resolution = self.config.resolution
        bucket = self.config.bucket_size

        root_plan: list = ["pending"]
        stack = [
            (all_items, 0, self.methods.initial_root_predicate(), 0,
             root_plan, 0)
        ]
        while stack:
            items_, level_, region_, depth_, parent, slot = stack.pop()
            if (
                len(items_) <= bucket
                or (resolution and level_ >= resolution)
                or depth_ > _MAX_SPLIT_DEPTH
            ):
                parent[slot] = ("leaf", items_)
                continue
            result = self.methods.picksplit(list(items_), level_, region_)
            if self._is_degenerate_split(result, len(items_)):
                parent[slot] = ("leaf", items_)
                continue
            children: list = []
            child_level = level_ + result.level_delta
            for predicate, part_items in result.partitions:
                if not part_items and self.config.node_shrink:
                    continue
                children.append([predicate, "pending"])
                stack.append(
                    (part_items, child_level, predicate, depth_ + 1,
                     children[-1], 1)
                )
            parent[slot] = ("inner", result.node_predicate, children)
        return root_plan[0]

    def _materialize_packed(self, plan: Any) -> NodeRef:
        """Write a plan tree straight into its final clustered page layout.

        Builds every node object up-front, then hands the tree to
        :func:`pack_nodes`, which assigns BFS-cap positions and writes each
        page exactly once. The resulting layout matches what
        :meth:`_materialize_incremental` followed by :meth:`repack` would
        produce, at roughly half the page writes.
        """
        plans: list = []
        stack = [plan]
        while stack:
            p = stack.pop()
            plans.append(p)
            if p[0] == "inner":
                stack.extend(child for _epred, child in p[2])
        node_of: dict[int, Any] = {}
        for p in plans:
            if p[0] == "leaf":
                node_of[id(p)] = LeafNode(items=p[1])
            else:
                node_of[id(p)] = InnerNode(
                    predicate=p[1],
                    entries=[Entry(epred, None) for epred, _child in p[2]],
                )
        children: dict[int, list[Any]] = {
            id(node_of[id(p)]): (
                [node_of[id(child)] for _epred, child in p[2]]
                if p[0] == "inner"
                else []
            )
            for p in plans
        }
        return pack_nodes(
            self.store, node_of[id(plan)], lambda n: children[id(n)]
        )

    def _materialize_incremental(self, plan: Any) -> NodeRef:
        """Materialize a plan tree bottom-up through the node store.

        Each work item writes its NodeRef into ``sink[slot]``; an inner
        node is pushed back once ("assemble") after its children so their
        refs are ready. Placement is the dynamic parent-proximity rule —
        the page layout a pure insert workload would have produced.
        """
        out: list = [None]
        work: list[tuple] = [("visit", plan, None, out, 0)]
        while work:
            action, node, refs, sink, slot = work.pop()
            if action == "visit":
                if node[0] == "leaf":
                    sink[slot] = self.store.create(LeafNode(items=node[1]))
                    continue
                _tag, _predicate, children = node
                child_refs: list = [None] * len(children)
                work.append(("assemble", node, child_refs, sink, slot))
                for i, (_entry_pred, child_plan) in enumerate(children):
                    work.append(("visit", child_plan, None, child_refs, i))
            else:
                _tag, predicate, children = node
                entries = [
                    Entry(entry_predicate, refs[i])
                    for i, (entry_predicate, _plan) in enumerate(children)
                ]
                sink[slot] = self.store.create(
                    InnerNode(predicate=predicate, entries=entries)
                )
        return out[0]

    def repack(self) -> None:
        """Rewrite node pages with the offline clustering algorithm."""
        if self.root is None:
            return
        old_store, old_root = self.store, self.root
        self.store, self.root = repack(old_store, old_root)
        for page_id in old_store.page_ids:
            self.buffer.free_page(page_id)
        old_store.detach()

    def repack_online(
        self, max_subtrees: int | None = None
    ) -> OnlineRepackStats:
        """Re-cluster hot subtrees in place, in bounded per-subtree steps.

        The online counterpart of :meth:`repack`: instead of rewriting the
        whole tree into a fresh store (which needs an exclusive rebuild),
        each *step* BFS-cap repacks one child subtree of the root inside
        the live store (:func:`repro.core.clustering.repack_subtree`) and
        repairs the root's downlink. Between steps the tree is always
        search-consistent, so a caller can interleave commits — the WAL
        then carries each repacked extent as ordinary page images, and a
        crash in any step recovers to the last committed step's layout.

        Subtrees are taken hottest-first by the store's per-page read
        counters (the nodecache/obs access signal): ``max_subtrees=1`` is
        the autovacuum-style background step; ``None`` repacks every
        subtree plus the root itself — the full ``REPACK INDEX``
        statement — and resets the heat counters.
        """
        store = self.store
        fill_before = store.fill_factor()
        subtrees = nodes_moved = pages_freed = 0
        root_node = store.read(self.root) if self.root is not None else None
        if isinstance(root_node, InnerNode):
            reads = store.page_reads
            order = sorted(
                (
                    i
                    for i, entry in enumerate(root_node.entries)
                    if entry.child is not None
                ),
                key=lambda i: -reads.get(
                    root_node.entries[i].child.page_id, 0
                ),
            )
            if max_subtrees is not None:
                order = order[:max_subtrees]
            for i in order:
                entry = root_node.entries[i]
                entry.child, step = repack_subtree(store, entry.child)
                # Persist the repaired downlink; the root may relocate if
                # its page ran out of space.
                self.root = store.write(self.root, root_node)
                subtrees += 1
                nodes_moved += step.nodes_moved
                pages_freed += step.pages_freed
                _OBS_REPACK_STEPS.inc()
                _OBS_REPACK_NODES.inc(step.nodes_moved)
        elif root_node is not None and max_subtrees is None:
            # Leaf-rooted (tiny) tree: the whole tree is one subtree.
            self.root, step = repack_subtree(store, self.root)
            subtrees += 1
            nodes_moved += step.nodes_moved
            pages_freed += step.pages_freed
            _OBS_REPACK_STEPS.inc()
            _OBS_REPACK_NODES.inc(step.nodes_moved)
        if isinstance(root_node, InnerNode) and max_subtrees is None:
            # Full pass: pull the root node itself into the packed extent
            # so its old page can be released too.
            cont = store._repack_open_page_id
            old_root = self.root
            near = NodeRef(cont, 0) if cont is not None else None
            self.root = store.create(root_node, near=near)
            store.free(old_root)
            nodes_moved += 1
            pages_freed += store.drop_empty_pages()
            store.page_reads.clear()
        return OnlineRepackStats(
            subtrees_repacked=subtrees,
            nodes_moved=nodes_moved,
            pages_freed=pages_freed,
            fill_before=fill_before,
            fill_after=store.fill_factor(),
        )

    # ------------------------------------------------------------------ cache

    def purge_node_cache(self) -> None:
        """Drop every cached node object (quarantine / recovery hook).

        The node cache is coherent by construction, but corruption handling
        is belt-and-braces: once a page fails verification the executor
        purges the whole cache before degrading, so no live node object
        from the poisoned index survives into later scans.
        """
        self.store.purge_cache()

    # ------------------------------------------------------------------ stats

    def __len__(self) -> int:
        return self._item_count

    @property
    def num_pages(self) -> int:
        """Pages allocated to index nodes (the paper's "index size")."""
        return self.store.num_pages

    def statistics(self) -> TreeStatistics:
        """Full structural statistics (heights, node counts, fill factor)."""
        return collect_statistics(self)

    def check(self, strict_buckets: bool = True) -> "Any":
        """Run the ``amcheck``-style structural verifier on this index.

        Returns a :class:`repro.resilience.check.CheckReport`; call its
        ``raise_if_failed()`` to turn findings into
        :class:`IndexCorruptionError`. See :func:`repro.resilience.check.
        spgist_check` for the list of verified invariants.
        """
        from repro.resilience.check import spgist_check

        return spgist_check(self, strict_buckets=strict_buckets)
