"""Index-scan cursors: the ``pg_am`` scan interface of Table 2.

The paper registers SP-GiST's interface routines ``spgistbeginscan``,
``spgistgettuple``, ``spgistrescan``, ``spgistendscan``, ``spgistmarkpos``
and ``spgistrestrpos``. :class:`IndexScanCursor` realizes that contract on
top of the generator-based ``search``/``nn_search``: incremental
``get-next``, restartable scans, and mark/restore positioning (needed by
merge joins and scrollable cursors in PostgreSQL).

Already-produced tuples are buffered so ``restore`` can rewind without
re-running the traversal; the buffer grows only as far as the scan has
actually advanced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.core.external import Query
from repro.errors import IndexError_
from repro.settings import SETTINGS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tree import SPGiSTIndex


class IndexScanCursor:
    """A positioned scan over one index and one query.

    ``spgistbeginscan`` is the constructor; :meth:`get_next` is
    ``spgistgettuple``; :meth:`rescan`, :meth:`mark`, :meth:`restore` and
    :meth:`close` map to their am-routine namesakes. Iteration protocol is
    supported for convenience (``for item in cursor``).
    """

    def __init__(self, index: "SPGiSTIndex", query: Query) -> None:
        self.index = index
        self.query = query
        self._source: Iterator | None = None
        self._buffer: list[Any] = []
        self._position = 0
        self._marked: int | None = None
        self._closed = False
        self._start()

    def _start(self) -> None:
        if self.query.op == "@@":
            self._source = self.index.nn_search(self.query.operand)
        else:
            self._source = self.index.search(self.query)
        self._buffer = []
        self._position = 0
        self._marked = None

    # -- amgettuple -----------------------------------------------------------------

    def get_next(self) -> Any | None:
        """Return the next tuple, or None when the scan is exhausted."""
        if self._closed:
            raise IndexError_("cursor is closed")
        if self._position < len(self._buffer):
            item = self._buffer[self._position]
            self._position += 1
            return item
        assert self._source is not None
        try:
            item = next(self._source)
        except StopIteration:
            return None
        self._buffer.append(item)
        self._position += 1
        return item

    def fetch(self, count: int | None = None) -> list[Any]:
        """Up to ``count`` tuples (the paper's cursor-controlled NN usage).

        ``None`` resolves to ``SETTINGS.batch_size`` — the cursor's
        batch-fetch granularity matches the executor's row batches, so
        server-side FETCH pagination pulls whole batches by default.
        """
        if count is None:
            count = SETTINGS.batch_size
        out = []
        for _ in range(count):
            item = self.get_next()
            if item is None:
                break
            out.append(item)
        return out

    def batches(self, batch_size: int | None = None) -> Iterator[list[Any]]:
        """Drain the remaining scan as non-empty fixed-size batches."""
        if batch_size is None:
            batch_size = SETTINGS.batch_size
        while True:
            batch = self.fetch(batch_size)
            if not batch:
                return
            yield batch

    def __iter__(self) -> Iterator[Any]:
        while True:
            item = self.get_next()
            if item is None:
                return
            yield item

    # -- amrescan ---------------------------------------------------------------------

    def rescan(self, query: Query | None = None) -> None:
        """Restart the scan, optionally with a new predicate."""
        if self._closed:
            raise IndexError_("cursor is closed")
        if query is not None:
            self.query = query
        self._start()

    # -- ammarkpos / amrestrpos ----------------------------------------------------------

    def mark(self) -> None:
        """Remember the current position (``spgistmarkpos``)."""
        if self._closed:
            raise IndexError_("cursor is closed")
        self._marked = self._position

    def restore(self) -> None:
        """Rewind to the marked position (``spgistrestrpos``)."""
        if self._closed:
            raise IndexError_("cursor is closed")
        if self._marked is None:
            raise IndexError_("no position has been marked")
        self._position = self._marked

    # -- amendscan ---------------------------------------------------------------------

    def close(self) -> None:
        """End the scan and drop its state (``spgistendscan``)."""
        self._closed = True
        self._source = None
        self._buffer = []

    def __enter__(self) -> "IndexScanCursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
