"""Incremental nearest-neighbour search over SP-GiST trees (paper Section 5).

An adaptation of the Hjaltason–Samet ranking algorithm [23]: a priority queue
holds index nodes and data objects keyed by a lower bound on (respectively
the exact value of) their distance to the query object. The queue starts with
the root at distance 0; popping a node replaces it with its children at their
own bounds; popping an object reports it as the next NN. Each ``next()`` on
the returned generator is one *get-next* call, so the scan composes into a
query pipeline exactly as the paper describes.

The paper's generalization beyond quadtrees/kd-trees — remembering the
parent's information so a child's bound can be computed (needed by the trie,
whose bound depends on the entire accumulated prefix) — appears here as the
``state`` value threaded from ``nn_initial_state`` through every
``nn_inner_distance`` call.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Iterator

from repro.costmodel import CPU_OPS
from repro.obs import METRICS, span
from repro.settings import SETTINGS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tree import SPGiSTIndex

_OBS_NN_SCANS = METRICS.counter(
    "spgist_operations_total", "SP-GiST operations started", labels=("op",)
).labels("nn")
_OBS_NN_NODES = METRICS.counter(
    "spgist_nodes_visited_total",
    "Tree nodes read during SP-GiST descents",
    labels=("op",),
).labels("nn")


class _ObjectTie:
    """Heap tie-break for equal-distance data objects: TID order.

    Orders by the entry's stored value (the heap TupleId in a table
    index), falling back to discovery order when two values are equal
    (spanning trees enqueue the same TID under several keys) or not
    mutually comparable (bare indexes carrying arbitrary payloads). The
    fallback never leaks nondeterminism into table scans: equal-TID
    entries are duplicates of one object, and the stream is deduped.
    """

    __slots__ = ("value", "seq")

    def __init__(self, value: Any, seq: int) -> None:
        self.value = value
        self.seq = seq

    def __lt__(self, other: "_ObjectTie") -> bool:
        try:
            if self.value < other.value:
                return True
            if other.value < self.value:
                return False
        except TypeError:
            pass
        return self.seq < other.seq


def nn_search(
    index: "SPGiSTIndex", query: Any
) -> Iterator[tuple[float, Any, Any]]:
    """Yield ``(distance, key, value)`` in non-decreasing distance order.

    The order is a *stable total order*: entries at equal distance come
    out in TID (stored-value) order, because inner nodes expand before
    any equal-distance object is reported and equal-distance objects
    tie-break on their value (:class:`_ObjectTie`). Every consumer —
    tuple-at-a-time, batched, and the cluster's cross-shard k-merge —
    therefore observes the same sequence for the same tree contents.
    """
    methods = index.methods
    if not methods.supports_nn:
        raise NotImplementedError(
            f"{index.name} does not define NN_Consistent (nn_*_distance)"
        )
    if index.root is None:
        return
    _OBS_NN_SCANS.inc()
    with span("index.nn", index=index.name):
        yield from _nn_ranked(index, query)


def _nn_ranked(
    index: "SPGiSTIndex", query: Any
) -> Iterator[tuple[float, Any, Any]]:
    methods = index.methods
    tiebreak = itertools.count()
    # Queue entries: (distance, kind, tie, payload, level, state) where
    # payload is a NodeRef for inner nodes (kind 0, tie = discovery
    # counter) and a (key, value) pair for data objects (kind 1, tie =
    # value/TID order). Popping all equal-distance nodes before any
    # equal-distance object means every object at distance d is enqueued
    # before the first one is reported, so objects stream out in a stable
    # (distance, TID) total order regardless of tree shape — the
    # determinism the cross-shard k-merge and the batch/tuple
    # differential oracle rely on.
    queue: list[tuple[float, int, Any, Any, int, Any]] = [
        (0.0, 0, next(tiebreak), index.root, 0,
         methods.nn_initial_state(query))
    ]
    seen: set[tuple[Any, Any]] | None = set() if methods.spanning else None

    while queue:
        distance, kind, _, payload, level, state = heapq.heappop(queue)
        if kind == 1:
            key, value = payload
            if seen is not None:
                token = (key, value)
                if token in seen:
                    continue
                seen.add(token)
            yield distance, key, value
            continue

        node = index.store.read(payload)
        _OBS_NN_NODES.inc()
        if node.is_leaf:
            for key, value in node.items:
                CPU_OPS.add(1)
                d = methods.nn_leaf_distance(query, key)
                # Clamp to the parent's bound to keep the order monotone in
                # the presence of slightly loose bounds.
                heapq.heappush(
                    queue,
                    (max(d, distance), 1, _ObjectTie(value, next(tiebreak)),
                     (key, value), level, None),
                )
            continue

        delta = methods.level_delta(node.predicate)
        for entry in node.entries:
            if entry.child is None:
                continue
            CPU_OPS.add(1)
            bound, child_state = methods.nn_inner_distance(
                query, node.predicate, entry.predicate, level, state
            )
            heapq.heappush(
                queue,
                (max(bound, distance), 0, next(tiebreak), entry.child,
                 level + delta, child_state),
            )


def nearest(
    index: "SPGiSTIndex", query: Any, k: int
) -> list[tuple[float, Any, Any]]:
    """Convenience wrapper: the ``k`` nearest items as a list."""
    return list(itertools.islice(nn_search(index, query), k))


def nn_search_batches(
    index: "SPGiSTIndex", query: Any, batch_size: int | None = None
) -> Iterator[list[tuple[float, Any, Any]]]:
    """:func:`nn_search` sliced into non-empty fixed-size batches.

    Batching an incremental best-first stream is free: the priority queue
    already holds the frontier, so slicing ``batch_size`` results at a
    time preserves the non-decreasing distance order across batches while
    letting callers process arrays. ``None`` resolves to
    ``SETTINGS.batch_size`` at call time.
    """
    if batch_size is None:
        batch_size = SETTINGS.batch_size
    ranked = nn_search(index, query)
    while True:
        batch = list(itertools.islice(ranked, batch_size))
        if not batch:
            return
        yield batch
