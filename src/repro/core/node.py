"""SP-GiST tree nodes and their on-page addressing.

Space-partitioning tree nodes are much smaller than disk pages (the paper's
"clustering" challenge, Section 3), so many nodes share a page. A node is
addressed by a :class:`NodeRef` — ``(page_id, slot)`` — which is exactly the
child-pointer representation a disk-based implementation uses.

Two node kinds exist:

- :class:`InnerNode`: an optional node-level predicate (e.g. the patricia
  trie's common prefix, the kd-tree's discriminator point) plus a list of
  :class:`Entry` values, each pairing an entry predicate (a letter, a
  quadrant box, "left"/"right"/blank, ...) with a child pointer.
- :class:`LeafNode` (the paper's *data node*): up to ``BucketSize`` items,
  each a ``(key, value)`` pair where the value is typically a heap TupleId.

Predicates are opaque to the core; only the external methods interpret them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

from repro.storage.page import ITEM_OVERHEAD, estimate_size

#: Per-node storage overhead: tuple header + line pointer + alignment, as
#: an index tuple costs in PostgreSQL. Identical accounting to the heap and
#: B+-tree entries keeps size comparisons across access methods fair.
NODE_HEADER_BYTES = 24


class _Blank:
    """Sentinel predicate for the 'blank' partition (paper Table 1).

    The trie uses blank for "string ends here"; the kd-tree and point
    quadtree use it for the child holding the discriminator point itself.
    A dedicated singleton keeps blank distinct from any real predicate value
    (including the empty string) and pickles to the same identity.
    """

    _instance: "_Blank | None" = None

    def __new__(cls) -> "_Blank":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BLANK"

    def __reduce__(self) -> tuple:
        return (_Blank, ())

    def approx_bytes(self) -> int:
        return 1


#: The blank-partition predicate singleton.
BLANK = _Blank()


class NodeRef(NamedTuple):
    """Physical node address: (page id, slot within the node page)."""

    page_id: int
    slot: int


@dataclass
class Entry:
    """One partition entry of an inner node: predicate + child pointer.

    ``child`` may be None transiently while the core is wiring a fresh
    partition; a persisted tree never contains dangling entries unless
    ``NodeShrink`` is False, in which case empty partitions point to an
    empty leaf.
    """

    predicate: Any
    child: NodeRef | None

    def approx_bytes(self) -> int:
        """Serialized footprint for page-space accounting."""
        # predicate + child pointer + line-pointer/alignment share
        return estimate_size(self.predicate) + 8 + ITEM_OVERHEAD // 2


@dataclass
class InnerNode:
    """An index (non-leaf) node: node predicate + partition entries."""

    predicate: Any = None
    entries: list[Entry] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return False

    def find_entry(self, predicate: Any) -> int | None:
        """Index of the entry whose predicate equals ``predicate``, or None."""
        for i, entry in enumerate(self.entries):
            if entry.predicate == predicate:
                return i
        return None

    def approx_bytes(self) -> int:
        """Serialized footprint for page-space accounting."""
        return (
            NODE_HEADER_BYTES
            + estimate_size(self.predicate)
            + sum(e.approx_bytes() + 2 for e in self.entries)
        )


@dataclass
class LeafNode:
    """A data node holding up to BucketSize ``(key, value)`` items."""

    items: list[tuple[Any, Any]] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.items)

    def approx_bytes(self) -> int:
        """Serialized footprint for page-space accounting."""
        # Per-item sizes are memoized (estimate_size): a leaf re-budgets its
        # page on every write, but each (key, value) footprint is constant.
        return NODE_HEADER_BYTES + sum(
            estimate_size(k) + estimate_size(v) + ITEM_OVERHEAD
            for k, v in self.items
        )
