"""Structural statistics of SP-GiST trees.

Feeds the cost estimator (``spgistcostestimate``) and the height/size
experiments (paper Figures 10–12, 14): node counts, item counts, maximum
*node height* (tree levels) and maximum *page height* (distinct pages on a
root-to-leaf path — the quantity the clustering technique minimizes), pages
used, and the page fill factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.node import InnerNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tree import SPGiSTIndex


@dataclass(frozen=True)
class TreeStatistics:
    """Snapshot of one index's structure."""

    inner_nodes: int
    leaf_nodes: int
    items: int
    max_node_height: int
    max_page_height: int
    pages: int
    used_bytes: int
    fill_factor: float
    #: Leaves holding more than BucketSize items (Resolution reached or
    #: inseparable duplicates) — the population spgist_check scrutinizes.
    spilled_leaves: int = 0

    @property
    def total_nodes(self) -> int:
        return self.inner_nodes + self.leaf_nodes


def collect_statistics(index: "SPGiSTIndex") -> TreeStatistics:
    """Traverse ``index`` once and gather :class:`TreeStatistics`.

    Node height counts nodes on the longest root-to-leaf path (a lone root
    leaf has height 1). Page height counts the distinct pages entered along
    that path — each page transition is one potential disk read, so this is
    the worst-case I/O of a point lookup with a cold cache.
    """
    inner_nodes = 0
    leaf_nodes = 0
    items = 0
    max_node_height = 0
    max_page_height = 0
    spilled_leaves = 0
    bucket_size = index.config.bucket_size

    if index.root is not None:
        # Stack entries: (ref, node_depth, page_depth, parent_page_id).
        stack = [(index.root, 1, 1, None)]
        while stack:
            ref, node_depth, page_depth, parent_page = stack.pop()
            node = index.store.read(ref)
            if node.is_leaf:
                leaf_nodes += 1
                items += len(node.items)
                if len(node.items) > bucket_size:
                    spilled_leaves += 1
                max_node_height = max(max_node_height, node_depth)
                max_page_height = max(max_page_height, page_depth)
                continue
            inner_nodes += 1
            max_node_height = max(max_node_height, node_depth)
            max_page_height = max(max_page_height, page_depth)
            for entry in node.entries:
                if entry.child is None:
                    continue
                child_page_depth = page_depth + (
                    1 if entry.child.page_id != ref.page_id else 0
                )
                stack.append(
                    (entry.child, node_depth + 1, child_page_depth, ref.page_id)
                )

    return TreeStatistics(
        inner_nodes=inner_nodes,
        leaf_nodes=leaf_nodes,
        items=items,
        max_node_height=max_node_height,
        max_page_height=max_page_height,
        pages=index.store.num_pages,
        used_bytes=index.store.used_bytes(),
        fill_factor=index.store.fill_factor(),
        spilled_leaves=spilled_leaves,
    )
