"""SP-GiST interface parameters (Section 3.1 of the paper).

The parameters tailor the generalized index into one member of the
space-partitioning-tree class. Table 1 of the paper gives the values used by
the dictionary trie and the kd-tree; each external-method class in
:mod:`repro.indexes` exposes its values through ``get_parameters()`` — the
analogue of the ``getparameters`` support function in the paper's operator
classes (Table 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PathShrink(enum.Enum):
    """How single-child paths are collapsed (paper Figure 1).

    - ``NEVER_SHRINK``: one character/partition per level (Figure 1a).
    - ``LEAF_SHRINK``: single-child chains collapse at the leaves (Figure 1b).
    - ``TREE_SHRINK``: single-child chains collapse anywhere — patricia-style
      prefix compression (Figure 1c).
    """

    NEVER_SHRINK = "NeverShrink"
    LEAF_SHRINK = "LeafShrink"
    TREE_SHRINK = "TreeShrink"


@dataclass(frozen=True)
class SPGiSTConfig:
    """The full interface-parameter block of one SP-GiST instantiation.

    Attributes mirror the paper's parameter list verbatim:

    - ``node_predicate``: human-readable description of inner-node entry
      predicates (e.g. ``"letter or blank"`` for the trie).
    - ``key_type``: the leaf data type name (``"varchar"``, ``"point"``, ...).
    - ``num_space_partitions``: partitions per decomposition (27 for the
      a–z+blank trie, 2 for the kd-tree, 4 for quadtrees).
    - ``resolution``: maximum decomposition depth; 0 means unlimited. When a
      split cannot go deeper (duplicate keys, resolution reached) the leaf is
      allowed to overflow its bucket rather than recurse forever.
    - ``path_shrink``: see :class:`PathShrink`.
    - ``node_shrink``: when True, empty partitions are not materialized
      (paper Figure 2b); when False every decomposition creates all
      ``num_space_partitions`` entries up front.
    - ``bucket_size``: maximum data items per leaf (data) node.
    """

    node_predicate: str
    key_type: str
    num_space_partitions: int
    resolution: int = 0
    path_shrink: PathShrink = PathShrink.NEVER_SHRINK
    node_shrink: bool = True
    bucket_size: int = 1

    def __post_init__(self) -> None:
        if self.num_space_partitions < 2:
            raise ValueError("num_space_partitions must be >= 2")
        if self.bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        if self.resolution < 0:
            raise ValueError("resolution must be >= 0 (0 = unlimited)")

    def describe(self) -> dict[str, object]:
        """Render the parameter block as a plain dict (for reports/tests)."""
        return {
            "NodePredicate": self.node_predicate,
            "KeyType": self.key_type,
            "NoOfSpacePartitions": self.num_space_partitions,
            "Resolution": self.resolution or "unlimited",
            "PathShrink": self.path_shrink.value,
            "NodeShrink": self.node_shrink,
            "BucketSize": self.bucket_size,
        }
