"""Node-to-page clustering: packing small tree nodes into disk pages.

Space-partitioning tree nodes are much smaller than pages, so the mapping of
nodes to pages decides the I/O cost of every root-to-leaf traversal (paper
Section 3, "Clustering"). SP-GiST ships a clustering technique based on
Diwan et al. [12] that provably minimizes the tree's *page height*. We
implement the same idea two ways:

- **Incremental placement** (:meth:`NodeStore.create`): a new node is placed
  on its parent's page when space remains, otherwise on the current open
  page, otherwise on a fresh page. Parent-child co-residency is exactly what
  keeps page height low during dynamic inserts.
- **Offline repacking** (:func:`repack`): after a bulk build, the tree is
  rewritten with BFS-cap packing — each page receives the breadth-first top
  of one subtree until its byte budget is exhausted, and the children left
  uncovered seed the next pages. Every traversal then crosses one page per
  cap, which is the minimum-page-height behaviour of [12]; Figure 12
  measures exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import IndexCorruptionError
from repro.core.node import Entry, InnerNode, LeafNode, NodeRef
from repro.storage.buffer import BufferPool
from repro.storage.nodecache import MISS, NodeCache
from repro.storage.page import PAGE_CAPACITY


@dataclass
class _NodePagePayload:
    """On-page layout for node pages: a slot array plus per-slot sizes."""

    slots: list[Any] = field(default_factory=list)
    slot_bytes: list[int] = field(default_factory=list)
    used_bytes: int = 0

    def live_nodes(self) -> int:
        return sum(1 for node in self.slots if node is not None)


class NodeStore:
    """Allocates, reads, writes, and relocates SP-GiST nodes in pages.

    Node addresses are physical: ``NodeRef(page_id, slot)``. A node that
    grows past its page's remaining space is *relocated* to a different page
    and the caller (which holds the descent path) repairs the parent's child
    pointer — mirroring how a C implementation moves a tuple and updates the
    downlink.
    """

    def __init__(
        self,
        buffer: BufferPool,
        page_capacity: int = PAGE_CAPACITY,
        use_node_cache: bool = True,
    ) -> None:
        self.buffer = buffer
        self.page_capacity = page_capacity
        self.page_ids: list[int] = []
        self.num_nodes = 0
        self._open_page_id: int | None = None
        #: Per-page read counters: how often :meth:`read` resolved a node
        #: on each page (cache hits included). The online repack uses
        #: these as its hot-subtree signal. Transient by design — not
        #: persisted in the meta page; after a restart the counters warm
        #: up again, which only changes repack *ordering*, never results.
        self.page_reads: dict[int, int] = {}
        #: The partially-filled tail page of the last online repack step,
        #: continued by the next step so stepwise repacking packs as
        #: densely as a one-shot repack. Also transient.
        self._repack_open_page_id: int | None = None
        # Deserialized-node cache. Coherence: the pool's eviction listener
        # drops a page's cached nodes the moment the page leaves the pool,
        # so the cache is always a subset of resident pages (see
        # repro.storage.nodecache for the full contract).
        self.cache: NodeCache | None = None
        self._cache_listener = None
        if use_node_cache:
            self.cache = NodeCache()
            self._cache_listener = buffer.add_eviction_listener(
                self.cache.drop_page
            )

    def detach(self) -> None:
        """Unhook this store's cache from the buffer pool.

        Must be called when a store is retired (e.g. replaced by a
        :func:`repack`) so the pool does not keep notifying a dead cache.
        Safe to call on a cacheless or already-detached store.
        """
        if self._cache_listener is not None:
            self.buffer.remove_eviction_listener(self._cache_listener)
            self._cache_listener = None
        if self.cache is not None:
            self.cache.clear()

    def purge_cache(self) -> None:
        """Drop every cached node (quarantine / recovery / cold-cache)."""
        if self.cache is not None:
            self.cache.clear()

    # -- creation / placement --------------------------------------------------

    def create(self, node: Any, near: NodeRef | None = None) -> NodeRef:
        """Store a new node, clustering it near ``near`` when possible."""
        size = node.approx_bytes()
        ref = None
        if near is not None:
            ref = self._try_place(near.page_id, node, size)
        if ref is None and self._open_page_id is not None:
            ref = self._try_place(self._open_page_id, node, size)
        if ref is None:
            payload = _NodePagePayload(
                slots=[node], slot_bytes=[size], used_bytes=size
            )
            page_id = self.buffer.new_page(payload)
            self.page_ids.append(page_id)
            self._open_page_id = page_id
            ref = NodeRef(page_id, 0)
        self.num_nodes += 1
        if self.cache is not None:
            self.cache.put(ref.page_id, ref.slot, node)
        return ref

    def _try_place(self, page_id: int, node: Any, size: int) -> NodeRef | None:
        payload: _NodePagePayload = self.buffer.fetch(page_id)
        if payload.used_bytes + size > self.page_capacity:
            return None
        # Reuse a tombstoned slot when one exists; else append.
        for slot, existing in enumerate(payload.slots):
            if existing is None:
                payload.slots[slot] = node
                payload.slot_bytes[slot] = size
                break
        else:
            payload.slots.append(node)
            payload.slot_bytes.append(size)
            slot = len(payload.slots) - 1
        payload.used_bytes += size
        self.buffer.mark_dirty(page_id)
        return NodeRef(page_id, slot)

    # -- access -------------------------------------------------------------------

    def read(self, ref: NodeRef) -> Any:
        """Fetch the node at ``ref`` (one buffer access on a cache miss).

        A node-cache hit still refreshes the page's LRU recency
        (:meth:`BufferPool.touch`), so the pool evicts in exactly the
        order it would without the cache — buffer miss counts, the
        paper's cost metric, are identical either way.
        """
        reads = self.page_reads
        reads[ref.page_id] = reads.get(ref.page_id, 0) + 1
        cache = self.cache
        if cache is not None:
            node = cache.get(ref.page_id, ref.slot)
            if node is not MISS and self.buffer.touch(ref.page_id):
                return node
        try:
            payload: _NodePagePayload = self.buffer.fetch(ref.page_id)
        except Exception:
            # Checksum / IO failure: never leave poisoned nodes behind.
            if cache is not None:
                cache.drop_page(ref.page_id)
            raise
        if ref.slot >= len(payload.slots) or payload.slots[ref.slot] is None:
            if cache is not None:
                cache.drop_page(ref.page_id)
            raise IndexCorruptionError(f"dangling node reference {ref}")
        node = payload.slots[ref.slot]
        if cache is not None:
            cache.put(ref.page_id, ref.slot, node)
        return node

    def write(self, ref: NodeRef, node: Any) -> NodeRef:
        """Persist ``node`` at ``ref``; relocate if it no longer fits.

        Returns the node's (possibly new) address. Callers must treat a
        changed address as a pointer update for the parent entry.
        """
        size = node.approx_bytes()
        payload: _NodePagePayload = self.buffer.fetch(ref.page_id)
        old_size = payload.slot_bytes[ref.slot]
        new_used = payload.used_bytes - old_size + size
        single_resident = payload.live_nodes() == 1
        # An oversize node alone on its page stands in for an overflow chain.
        if new_used <= self.page_capacity or (
            single_resident and size > self.page_capacity
        ):
            payload.slots[ref.slot] = node
            payload.slot_bytes[ref.slot] = size
            payload.used_bytes = new_used
            self.buffer.mark_dirty(ref.page_id)
            if self.cache is not None:
                self.cache.put(ref.page_id, ref.slot, node)
            return ref
        self._remove_slot(payload, ref)
        self.num_nodes -= 1  # create() re-counts it
        return self.create(node)

    def free(self, ref: NodeRef) -> None:
        """Tombstone the node at ``ref``."""
        payload: _NodePagePayload = self.buffer.fetch(ref.page_id)
        if payload.slots[ref.slot] is None:
            raise IndexCorruptionError(f"double free of node {ref}")
        self._remove_slot(payload, ref)
        self.num_nodes -= 1

    def _remove_slot(self, payload: _NodePagePayload, ref: NodeRef) -> None:
        payload.used_bytes -= payload.slot_bytes[ref.slot]
        payload.slots[ref.slot] = None
        payload.slot_bytes[ref.slot] = 0
        self.buffer.mark_dirty(ref.page_id)
        if self.cache is not None:
            self.cache.drop_slot(ref.page_id, ref.slot)

    def drop_empty_pages(self) -> int:
        """Release every node page with no live slots; returns the count.

        Freed pages leave the buffer pool via :meth:`BufferPool.free_page`,
        which notifies the node-cache eviction listeners — so no stale
        cached node can outlive its page. The incremental open page and
        the repack continuation page are forgotten if they are dropped.
        """
        keep: list[int] = []
        freed = 0
        for page_id in self.page_ids:
            payload: _NodePagePayload = self.buffer.fetch(page_id)
            if payload.live_nodes():
                keep.append(page_id)
                continue
            if self._open_page_id == page_id:
                self._open_page_id = None
            if self._repack_open_page_id == page_id:
                self._repack_open_page_id = None
            self.page_reads.pop(page_id, None)
            self.buffer.free_page(page_id)
            freed += 1
        self.page_ids = keep
        return freed

    # -- statistics ------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return len(self.page_ids)

    def used_bytes(self) -> int:
        """Total node bytes currently stored across all node pages."""
        total = 0
        for page_id in self.page_ids:
            payload: _NodePagePayload = self.buffer.fetch(page_id)
            total += payload.used_bytes
        return total

    def fill_factor(self) -> float:
        """Used fraction of the allocated node pages (0..1)."""
        if not self.page_ids:
            return 0.0
        return self.used_bytes() / (len(self.page_ids) * self.page_capacity)


def pack_nodes(
    store: NodeStore, root: Any, children_of: Any
) -> NodeRef:
    """Write a fully-built in-memory tree into ``store``, BFS-cap packed.

    ``root`` is the root node object; ``children_of(node)`` returns an
    inner node's child node objects, aligned 1:1 with ``node.entries``
    (entry ``i`` points at child ``i``). The function assigns every node
    its final ``(page, slot)`` with the same BFS-cap planning as
    :func:`repack`, wires each entry's child pointer, and writes each page
    exactly once — the bulk-build fast path that skips the
    create-incrementally-then-repack double write.

    Pages are appended to ``store``; returns the root's :class:`NodeRef`.
    """
    from collections import deque

    node_by_id: dict[int, Any] = {}
    sizes: dict[int, int] = {}
    kids: dict[int, list[Any]] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        nid = id(node)
        node_by_id[nid] = node
        sizes[nid] = node.approx_bytes()
        kids[nid] = list(children_of(node))
        stack.extend(kids[nid])

    # BFS-cap planning, identical to repack(): fill each page with the
    # breadth-first top of pending subtrees; uncovered frontier children
    # seed later pages.
    page_capacity = store.page_capacity
    group_members: list[list[int]] = []
    position: dict[int, tuple[int, int]] = {}
    pending: deque[Any] = deque([root])
    while pending:
        group = len(group_members)
        members: list[int] = []
        group_members.append(members)
        free = page_capacity
        overflow: deque[Any] = deque()
        while pending:
            seed = pending.popleft()
            if members and sizes[id(seed)] > free:
                overflow.appendleft(seed)
                break
            cap: deque[Any] = deque([seed])
            while cap:
                node = cap.popleft()
                nid = id(node)
                if members and sizes[nid] > free:
                    overflow.append(node)
                    continue
                position[nid] = (group, len(members))
                members.append(nid)
                free -= sizes[nid]
                cap.extend(kids[nid])
        pending.extendleft(reversed(overflow))

    page_of_group = [
        store.buffer.new_page(_NodePagePayload()) for _ in group_members
    ]
    store.page_ids.extend(page_of_group)

    def _ref(node: Any) -> NodeRef:
        group, slot = position[id(node)]
        return NodeRef(page_of_group[group], slot)

    for group, members in enumerate(group_members):
        payload = _NodePagePayload()
        for nid in members:
            node = node_by_id[nid]
            if isinstance(node, InnerNode):
                for entry, child in zip(node.entries, kids[nid]):
                    entry.child = _ref(child)
            payload.slots.append(node)
            payload.slot_bytes.append(sizes[nid])
            payload.used_bytes += sizes[nid]
            store.num_nodes += 1
        store.buffer.update(page_of_group[group], payload)
    return _ref(root)


def repack(store: NodeStore, root: NodeRef) -> tuple[NodeStore, NodeRef]:
    """Rewrite the tree rooted at ``root`` into a fresh, clustered NodeStore.

    BFS-cap packing: each page is filled with the breadth-first top of one
    (or, when space remains, several) pending subtrees until its byte budget
    is exhausted; frontier children that did not make the cut become the
    pending subtree roots of later pages. A root-to-leaf traversal crosses
    one page per cap, giving the minimum-page-height behaviour of [12],
    while seed-sharing keeps pages full.

    Returns ``(new_store, new_root)`` over the same buffer pool. The caller
    owns swapping them in and freeing the old pages.
    """
    # Phase 1 — plan: assign every node a (group, slot) position. Planning
    # touches only local Python state, so buffer evictions during the walk
    # are harmless.
    from collections import deque

    group_members: list[list[NodeRef]] = []
    position: dict[NodeRef, tuple[int, int]] = {}
    node_sizes: dict[NodeRef, int] = {}

    page_capacity = store.page_capacity
    pending: deque[NodeRef] = deque([root])
    while pending:
        group = len(group_members)
        members: list[NodeRef] = []
        group_members.append(members)
        free = page_capacity
        overflow: deque[NodeRef] = deque()
        while pending:
            # Pack the cap of the next pending subtree into this page; stop
            # opening new caps once one of them no longer fits at all.
            seed = pending.popleft()
            seed_size = store.read(seed).approx_bytes()
            if members and seed_size > free:
                overflow.appendleft(seed)
                break
            cap: deque[NodeRef] = deque([seed])
            while cap:
                ref = cap.popleft()
                node = store.read(ref)
                size = node.approx_bytes()
                node_sizes[ref] = size
                if members and size > free:
                    overflow.append(ref)  # its subtree starts a later page
                    continue
                position[ref] = (group, len(members))
                members.append(ref)
                free -= size
                if isinstance(node, InnerNode):
                    for entry in node.entries:
                        if entry.child is not None:
                            cap.append(entry.child)
        pending.extendleft(reversed(overflow))

    # Phase 2 — materialize: reserve page ids for every group, then build
    # each page payload fully wired (children already know their final
    # addresses) and write it in one shot. No mutate-after-write anywhere.
    new_store = NodeStore(
        store.buffer,
        page_capacity=page_capacity,
        use_node_cache=store.cache is not None,
    )
    page_of_group = [
        new_store.buffer.new_page(_NodePagePayload()) for _ in group_members
    ]
    new_store.page_ids.extend(page_of_group)

    def _new_ref(old: NodeRef) -> NodeRef:
        group, slot = position[old]
        return NodeRef(page_of_group[group], slot)

    for group, members in enumerate(group_members):
        payload = _NodePagePayload()
        for ref in members:
            node = store.read(ref)
            if isinstance(node, InnerNode):
                node = InnerNode(
                    predicate=node.predicate,
                    entries=[
                        Entry(
                            e.predicate,
                            _new_ref(e.child) if e.child is not None else None,
                        )
                        for e in node.entries
                    ],
                )
            else:
                node = LeafNode(items=list(node.items))
            payload.slots.append(node)
            payload.slot_bytes.append(node_sizes[ref])
            payload.used_bytes += node_sizes[ref]
            new_store.num_nodes += 1
        new_store.buffer.update(page_of_group[group], payload)

    return new_store, _new_ref(root)


@dataclass(frozen=True)
class SubtreeRepackStats:
    """What one online repack step moved and reclaimed."""

    nodes_moved: int
    pages_allocated: int
    pages_freed: int


def repack_subtree(
    store: NodeStore, root: NodeRef
) -> tuple[NodeRef, SubtreeRepackStats]:
    """BFS-cap repack ONE subtree in place, inside the same store.

    The online counterpart of :func:`repack`: the subtree under ``root``
    is re-planned with the same BFS-cap packing, materialized into dense
    pages appended to the *same* store, and only then are the old slots
    freed — so a crash at any point leaves either the old layout or (after
    the caller commits) the new one, never a half-moved tree. Pages left
    with no live slots are released immediately.

    Density across steps: the first new page continues the previous
    step's partially-filled tail page (``_repack_open_page_id``), so
    repacking a tree one subtree at a time converges to the same fill as
    a one-shot repack instead of paying a tail-fragment per subtree.

    Returns ``(new_root_ref, stats)``; the caller owns repairing the
    parent's downlink to ``new_root_ref`` before committing.
    """
    from collections import deque

    page_capacity = store.page_capacity

    # Phase 1 — plan (group, slot) positions, BFS-cap. Group 0 may be a
    # continuation of the previous step's tail page: its slot numbering
    # starts past the live slots already there.
    cont_page: int | None = store._repack_open_page_id
    cont_base = 0
    cont_free = 0
    if cont_page is not None and cont_page in store.page_ids:
        payload: _NodePagePayload = store.buffer.fetch(cont_page)
        cont_base = len(payload.slots)
        cont_free = page_capacity - payload.used_bytes
        if cont_free <= 0:
            cont_page = None
    else:
        cont_page = None

    group_members: list[list[NodeRef]] = []
    group_is_cont: list[bool] = []
    position: dict[NodeRef, tuple[int, int]] = {}
    node_sizes: dict[NodeRef, int] = {}
    pending: deque[NodeRef] = deque([root])
    use_cont = cont_page is not None  # consumed by the first group only
    while pending:
        group = len(group_members)
        members: list[NodeRef] = []
        group_members.append(members)
        continuation, use_cont = use_cont, False
        free = cont_free if continuation else page_capacity
        overflow: deque[NodeRef] = deque()
        while pending:
            seed = pending.popleft()
            seed_size = store.read(seed).approx_bytes()
            if (members or continuation) and seed_size > free:
                overflow.appendleft(seed)
                break
            cap: deque[NodeRef] = deque([seed])
            while cap:
                ref = cap.popleft()
                node = store.read(ref)
                size = node.approx_bytes()
                node_sizes[ref] = size
                if (members or continuation) and size > free:
                    overflow.append(ref)
                    continue
                position[ref] = (group, len(members))
                members.append(ref)
                free -= size
                if isinstance(node, InnerNode):
                    for entry in node.entries:
                        if entry.child is not None:
                            cap.append(entry.child)
        pending.extendleft(reversed(overflow))
        if not members:
            # Only a zero-room continuation page produces an empty group
            # (a fresh page always admits its first seed). Drop it; no
            # position ever pointed at it.
            group_members.pop()
        else:
            group_is_cont.append(continuation)

    # Phase 2 — materialize. New pages are reserved up front so children's
    # final addresses are known before any payload is written.
    page_of_group: list[int] = []
    slot_base: list[int] = []
    new_pages: list[int] = []
    for group in range(len(group_members)):
        if group_is_cont[group]:
            page_of_group.append(cont_page)
            slot_base.append(cont_base)
        else:
            page_id = store.buffer.new_page(_NodePagePayload())
            store.page_ids.append(page_id)
            page_of_group.append(page_id)
            slot_base.append(0)
            new_pages.append(page_id)

    def _new_ref(old: NodeRef) -> NodeRef:
        group, slot = position[old]
        return NodeRef(page_of_group[group], slot_base[group] + slot)

    for group, members in enumerate(group_members):
        page_id = page_of_group[group]
        payload = store.buffer.fetch(page_id)
        for ref in members:
            node = store.read(ref)
            if isinstance(node, InnerNode):
                node = InnerNode(
                    predicate=node.predicate,
                    entries=[
                        Entry(
                            e.predicate,
                            _new_ref(e.child) if e.child is not None else None,
                        )
                        for e in node.entries
                    ],
                )
            else:
                node = LeafNode(items=list(node.items))
            payload.slots.append(node)
            payload.slot_bytes.append(node_sizes[ref])
            payload.used_bytes += node_sizes[ref]
        store.buffer.mark_dirty(page_id)

    # Phase 3 — retire the old copies; node count is unchanged (every
    # free() decrement is matched by one appended slot above).
    store.num_nodes += len(position)
    for ref in position:
        store.free(ref)
    pages_freed = store.drop_empty_pages()

    # The densest continuation candidate for the next step is the last
    # page this step wrote (BFS-cap leaves its tail partially filled).
    store._repack_open_page_id = page_of_group[-1] if page_of_group else None

    return _new_ref(root), SubtreeRepackStats(
        nodes_moved=len(position),
        pages_allocated=len(new_pages),
        pages_freed=pages_freed,
    )
