"""Baseline access methods the paper compares SP-GiST against.

PostgreSQL's built-in B+-tree (strings, Figures 6–12), its R-tree (points
and segments, Figures 13–15), and the sequential heap scan (substring
search, Figure 16). All three run on the same page/buffer substrate as the
SP-GiST indexes so I/O comparisons are apples-to-apples.
"""

from repro.baselines.bptree import BPlusTree
from repro.baselines.hash import HashIndex
from repro.baselines.rtree import RTree
from repro.baselines.seqscan import sequential_scan, substring_scan

__all__ = [
    "BPlusTree",
    "HashIndex",
    "RTree",
    "sequential_scan",
    "substring_scan",
]
