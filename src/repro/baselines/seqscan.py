"""Sequential-scan baseline (heap access method).

Figure 16 compares the suffix tree against sequential scanning because no
other access method supports substring match. These helpers run predicate
scans over a :class:`HeapFile`, paying one buffer access per heap page.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.storage.heap import HeapFile, TupleId


def sequential_scan(
    heap: HeapFile, predicate: Callable[[Any], bool]
) -> Iterator[tuple[TupleId, Any]]:
    """Yield every ``(tid, record)`` whose record satisfies ``predicate``."""
    for tid, record in heap.scan():
        if predicate(record):
            yield tid, record


def substring_scan(
    heap: HeapFile,
    needle: str,
    extract: Callable[[Any], str] = lambda record: record,
) -> list[tuple[TupleId, Any]]:
    """Substring-match over the heap: records whose string contains ``needle``.

    ``extract`` pulls the searched string out of a record (identity for
    plain string heaps, a column getter for row tuples).
    """
    return list(sequential_scan(heap, lambda record: needle in extract(record)))
