"""Disk-based B+-tree — the paper's string baseline (PostgreSQL nbtree).

One tree node per 8 KB page, as in PostgreSQL. Leaves are chained for range
scans; duplicates are stored as separate entries. Deletion is *lazy* exactly
as in PostgreSQL's nbtree: entries are removed in place, pages are never
merged, and a later :meth:`vacuum` reclaims fully-empty leaves — this is the
faithful model, not a shortcut.

Search operators used by the experiments:

- exact match (:meth:`search`),
- range scan (:meth:`range_scan`),
- prefix match (:meth:`prefix_scan`) — efficient, because leaf order is key
  order (why the B+-tree wins Figure 6's prefix panel),
- regular-expression match with the ``?`` wildcard (:meth:`regex_scan`) —
  only the prefix *before* the first wildcard can be used to narrow the
  scan, so a leading ``?`` degrades to a full leaf scan (why the trie wins
  Figure 7 by orders of magnitude).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.costmodel import CPU_OPS
from repro.errors import KeyNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.page import ITEM_OVERHEAD, PAGE_CAPACITY, approx_size

#: Fill fraction targeted by bulk loading (PostgreSQL's leaf fillfactor).
BULK_FILL = 0.90


def _entry_bytes(key: Any, value: Any = None) -> int:
    return approx_size(key) + approx_size(value) + ITEM_OVERHEAD


def _bisect_cost(n: int) -> int:
    """Key comparisons one binary search over ``n`` keys performs."""
    return max(1, n.bit_length())


@dataclass
class _LeafNode:
    keys: list[Any] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)
    next_leaf: int | None = None
    used_bytes: int = 0

    is_leaf: bool = True


@dataclass
class _InnerNode:
    keys: list[Any] = field(default_factory=list)  # separators
    children: list[int] = field(default_factory=list)  # page ids, len(keys)+1
    used_bytes: int = 0

    is_leaf: bool = False


class BPlusTree:
    """A disk-based B+-tree over the shared buffer pool.

    Keys may be any totally ordered type (strings, numbers, tuples).
    """

    def __init__(
        self,
        buffer: BufferPool,
        name: str = "btree",
        page_capacity: int = PAGE_CAPACITY,
    ) -> None:
        self.buffer = buffer
        self.name = name
        self.page_capacity = page_capacity
        self._page_ids: list[int] = []
        root = _LeafNode()
        self.root_page = self._new_node(root)
        self._height = 1
        self._item_count = 0

    # -- page plumbing -----------------------------------------------------------

    def _new_node(self, node: Any) -> int:
        page_id = self.buffer.new_page(node)
        self._page_ids.append(page_id)
        return page_id

    def _read(self, page_id: int) -> Any:
        return self.buffer.fetch(page_id)

    def _write(self, page_id: int, node: Any) -> None:
        self.buffer.update(page_id, node)

    # -- insert ---------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``(key, value)``; duplicates are kept as separate entries."""
        split = self._insert_into(self.root_page, key, value)
        if split is not None:
            separator, right_page = split
            new_root = _InnerNode(
                keys=[separator],
                children=[self.root_page, right_page],
                used_bytes=_entry_bytes(separator) + 16,
            )
            self.root_page = self._new_node(new_root)
            self._height += 1
        self._item_count += 1

    def _insert_into(
        self, page_id: int, key: Any, value: Any
    ) -> tuple[Any, int] | None:
        """Recursive insert; returns ``(separator, new_right_page)`` on split."""
        node = self._read(page_id)
        CPU_OPS.add(_bisect_cost(len(node.keys)))
        if node.is_leaf:
            position = bisect.bisect_right(node.keys, key)
            node.keys.insert(position, key)
            node.values.insert(position, value)
            node.used_bytes += _entry_bytes(key, value)
            if node.used_bytes > self.page_capacity:
                result = self._split_leaf(page_id, node)
            else:
                result = None
            self._write(page_id, node)
            return result

        child_index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        separator, right_page = split
        position = bisect.bisect_right(node.keys, separator)
        node.keys.insert(position, separator)
        node.children.insert(position + 1, right_page)
        node.used_bytes += _entry_bytes(separator) + 8
        if node.used_bytes > self.page_capacity:
            result = self._split_inner(page_id, node)
        else:
            result = None
        self._write(page_id, node)
        return result

    def _split_leaf(self, page_id: int, node: _LeafNode) -> tuple[Any, int]:
        mid = len(node.keys) // 2
        right = _LeafNode(
            keys=node.keys[mid:],
            values=node.values[mid:],
            next_leaf=node.next_leaf,
        )
        right.used_bytes = sum(
            _entry_bytes(k, v) for k, v in zip(right.keys, right.values)
        )
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.used_bytes -= right.used_bytes
        right_page = self._new_node(right)
        node.next_leaf = right_page
        return right.keys[0], right_page

    def _split_inner(self, page_id: int, node: _InnerNode) -> tuple[Any, int]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _InnerNode(
            keys=node.keys[mid + 1 :],
            children=node.children[mid + 1 :],
        )
        right.used_bytes = (
            sum(_entry_bytes(k) + 8 for k in right.keys) + 16
        )
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        node.used_bytes = sum(_entry_bytes(k) + 8 for k in node.keys) + 16
        right_page = self._new_node(right)
        return separator, right_page

    # -- bulk load --------------------------------------------------------------------

    def bulk_load(self, items: list[tuple[Any, Any]]) -> None:
        """Replace the tree contents with ``items`` (sorted by key inside).

        Packs leaves to ``BULK_FILL`` then builds the inner levels bottom-up,
        as PostgreSQL's CREATE INDEX does after sorting the relation.
        """
        items = sorted(items, key=lambda kv: kv[0])
        self._page_ids.clear()
        self._item_count = len(items)
        if not items:
            self.root_page = self._new_node(_LeafNode())
            self._height = 1
            return

        budget = self.page_capacity * BULK_FILL
        leaves: list[tuple[int, Any]] = []  # (page_id, first_key)
        current = _LeafNode()
        for key, value in items:
            size = _entry_bytes(key, value)
            if current.keys and current.used_bytes + size > budget:
                leaves.append((self._new_node(current), current.keys[0]))
                current = _LeafNode()
            current.keys.append(key)
            current.values.append(value)
            current.used_bytes += size
        leaves.append((self._new_node(current), current.keys[0]))
        for (page_id, _), (next_page, _) in zip(leaves, leaves[1:]):
            node = self._read(page_id)
            node.next_leaf = next_page
            self._write(page_id, node)

        level = leaves
        self._height = 1
        while len(level) > 1:
            next_level: list[tuple[int, Any]] = []
            current_inner = _InnerNode(children=[level[0][0]], used_bytes=16)
            first_key = level[0][1]
            for page_id, sep_key in level[1:]:
                size = _entry_bytes(sep_key) + 8
                if current_inner.keys and current_inner.used_bytes + size > budget:
                    next_level.append((self._new_node(current_inner), first_key))
                    current_inner = _InnerNode(children=[page_id], used_bytes=16)
                    first_key = sep_key
                    continue
                current_inner.keys.append(sep_key)
                current_inner.children.append(page_id)
                current_inner.used_bytes += size
            next_level.append((self._new_node(current_inner), first_key))
            level = next_level
            self._height += 1
        self.root_page = level[0][0]

    # -- point / range search --------------------------------------------------------------

    def _descend_to_leaf(self, key: Any, leftmost: bool = False) -> int:
        """Page id of the leaf where ``key`` belongs.

        ``leftmost=True`` biases toward the first leaf that could contain an
        equal key (needed for duplicate runs).
        """
        page_id = self.root_page
        node = self._read(page_id)
        while not node.is_leaf:
            CPU_OPS.add(_bisect_cost(len(node.keys)))
            if leftmost:
                index = bisect.bisect_left(node.keys, key)
            else:
                index = bisect.bisect_right(node.keys, key)
            page_id = node.children[index]
            node = self._read(page_id)
        CPU_OPS.add(_bisect_cost(len(node.keys)))
        return page_id

    def search(self, key: Any) -> list[Any]:
        """All values stored under exactly ``key``."""
        return [value for _, value in self.range_scan(key, key, inclusive=True)]

    def range_scan(
        self, low: Any, high: Any, inclusive: bool = True
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` for low <= key < high (<= when inclusive)."""
        page_id = self._descend_to_leaf(low, leftmost=True)
        while page_id is not None:
            node = self._read(page_id)
            start = bisect.bisect_left(node.keys, low)
            for position in range(start, len(node.keys)):
                key = node.keys[position]
                CPU_OPS.add(1)
                if key > high or (key == high and not inclusive):
                    return
                yield key, node.values[position]
            page_id = node.next_leaf

    def scan_all(self) -> Iterator[tuple[Any, Any]]:
        """Full ordered scan through the leaf chain."""
        page_id = self.root_page
        node = self._read(page_id)
        while not node.is_leaf:
            page_id = node.children[0]
            node = self._read(page_id)
        while page_id is not None:
            node = self._read(page_id)
            CPU_OPS.add(len(node.keys))
            yield from zip(node.keys, node.values)
            page_id = node.next_leaf

    # -- string search operators ------------------------------------------------------------

    def prefix_scan(self, prefix: str) -> Iterator[tuple[str, Any]]:
        """All entries whose key starts with ``prefix`` (string keys only)."""
        if prefix == "":
            yield from self.scan_all()
            return
        page_id = self._descend_to_leaf(prefix, leftmost=True)
        while page_id is not None:
            node = self._read(page_id)
            start = bisect.bisect_left(node.keys, prefix)
            for position in range(start, len(node.keys)):
                key = node.keys[position]
                CPU_OPS.add(1)
                if not key.startswith(prefix):
                    if key > prefix:
                        return
                    continue
                yield key, node.values[position]
            page_id = node.next_leaf

    def regex_scan(self, pattern: str, wildcard: str = "?") -> Iterator[tuple[str, Any]]:
        """Entries matching ``pattern`` under the paper's ``?=`` semantics.

        Only the prefix preceding the first wildcard narrows the B+-tree
        scan; everything after is post-filtering. A pattern starting with
        the wildcard forces a full scan — the sensitivity the paper
        highlights in Section 6.
        """
        from repro.indexes.trie import regex_matches

        wildcard_at = pattern.find(wildcard)
        prefix = pattern if wildcard_at < 0 else pattern[:wildcard_at]
        for key, value in self.prefix_scan(prefix):
            if len(key) > len(pattern):
                # Keys sharing the prefix but longer than the pattern cannot
                # match; keep scanning — longer and shorter keys interleave.
                continue
            if regex_matches(pattern, key):
                yield key, value

    def glob_scan(self, pattern: str) -> Iterator[tuple[str, Any]]:
        """Entries matching a glob pattern ('?' one char, '*' any run).

        Extension operator ``*=``: as with ``?=``, only the literal prefix
        before the first wildcard narrows the scan.
        """
        from repro.indexes.trie import STAR, WILDCARD, glob_matches

        cut = len(pattern)
        for wildcard in (WILDCARD, STAR):
            at = pattern.find(wildcard)
            if at >= 0:
                cut = min(cut, at)
        for key, value in self.prefix_scan(pattern[:cut]):
            if glob_matches(pattern, key):
                yield key, value

    # -- delete / vacuum -----------------------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> int:
        """Lazily remove entries equal to ``key`` (and ``value`` when given).

        Returns the number of entries removed; raises
        :class:`KeyNotFoundError` when none matched. Pages are not merged
        (PostgreSQL nbtree semantics); :meth:`vacuum` reclaims empty leaves.
        """
        removed = 0
        page_id = self._descend_to_leaf(key, leftmost=True)
        while page_id is not None:
            node = self._read(page_id)
            position = bisect.bisect_left(node.keys, key)
            changed = False
            while position < len(node.keys) and node.keys[position] == key:
                if value is None or node.values[position] == value:
                    node.used_bytes -= _entry_bytes(key, node.values[position])
                    del node.keys[position]
                    del node.values[position]
                    removed += 1
                    changed = True
                else:
                    position += 1
            if changed:
                self._write(page_id, node)
            if node.keys and node.keys[-1] > key:
                break
            page_id = node.next_leaf
        if removed == 0:
            raise KeyNotFoundError(key)
        self._item_count -= removed
        return removed

    def vacuum(self) -> int:
        """Rebuild the tree without dead space; returns pages reclaimed."""
        before = len(self._page_ids)
        entries = list(self.scan_all())
        for page_id in self._page_ids:
            self.buffer.free_page(page_id)
        self._page_ids = []
        self.bulk_load(entries)
        return before - len(self._page_ids)

    # -- statistics ----------------------------------------------------------------------------

    def __len__(self) -> int:
        return self._item_count

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    @property
    def height(self) -> int:
        """Tree height in nodes — equal to height in pages (1 node = 1 page)."""
        return self._height

    def check_invariants(self) -> None:
        """Validate key order within and across leaves (testing aid)."""
        previous = None
        for key, _ in self.scan_all():
            if previous is not None and key < previous:
                raise AssertionError(
                    f"B+-tree order violated: {key!r} after {previous!r}"
                )
            previous = key
