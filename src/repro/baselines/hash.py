"""Disk-based hash index (linear hashing) — PostgreSQL's hash access method.

The paper's Section 4.2 lists hash among the access methods PostgreSQL
ships ("Hash: To support simple equality queries"); we provide it so the
engine's catalog mirrors that inventory and equality-only workloads have
their natural baseline.

Implementation: Litwin's linear hashing. Buckets are pages; a bucket that
outgrows its page chains into overflow pages; when the load factor passes
:data:`SPLIT_LOAD_FACTOR` the split pointer's bucket is rehashed into two,
growing the table one bucket at a time with no global rebuilds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.costmodel import CPU_OPS
from repro.errors import KeyNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.page import ITEM_OVERHEAD, PAGE_CAPACITY, approx_size

#: Initial number of buckets (must be a power of two).
INITIAL_BUCKETS = 4

#: Average items per bucket that triggers the next split.
SPLIT_LOAD_FACTOR = 0.75


def stable_hash(key: Any) -> int:
    """Deterministic across processes (``hash()`` is salted for str)."""
    raw = repr(key).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(raw, digest_size=8).digest(), "big")


@dataclass
class _BucketPage:
    """One bucket (or overflow) page: parallel key/value slots + chain."""

    keys: list[Any] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)
    next_page: int | None = None
    used_bytes: int = 0


def _entry_bytes(key: Any, value: Any) -> int:
    return approx_size(key) + approx_size(value) + ITEM_OVERHEAD


class HashIndex:
    """A linear-hashing equality index over the shared buffer pool."""

    def __init__(
        self,
        buffer: BufferPool,
        name: str = "hash",
        page_capacity: int = PAGE_CAPACITY,
    ) -> None:
        self.buffer = buffer
        self.name = name
        self.page_capacity = page_capacity
        self._buckets: list[int] = [
            buffer.new_page(_BucketPage()) for _ in range(INITIAL_BUCKETS)
        ]
        self._overflow_pages = 0
        self._level_size = INITIAL_BUCKETS  # buckets at round start (2^L · B0)
        self._split_pointer = 0
        self._item_count = 0
        # Capacity in items one bucket comfortably holds, for the load factor.
        self._bucket_budget = max(1, page_capacity // 48)

    # -- addressing ---------------------------------------------------------------

    def _bucket_of(self, key: Any) -> int:
        h = stable_hash(key)
        index = h % self._level_size
        if index < self._split_pointer:
            index = h % (self._level_size * 2)
        return index

    # -- insert ---------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``(key, value)``; duplicates kept as separate entries."""
        self._insert_into_bucket(self._bucket_of(key), key, value)
        self._item_count += 1
        load = self._item_count / (len(self._buckets) * self._bucket_budget)
        if load > SPLIT_LOAD_FACTOR:
            self._split_next()

    def _insert_into_bucket(self, bucket: int, key: Any, value: Any) -> None:
        page_id = self._buckets[bucket]
        need = _entry_bytes(key, value)
        while True:
            page: _BucketPage = self.buffer.fetch(page_id)
            if page.used_bytes + need <= self.page_capacity:
                page.keys.append(key)
                page.values.append(value)
                page.used_bytes += need
                self.buffer.mark_dirty(page_id)
                return
            if page.next_page is None:
                overflow = self.buffer.new_page(
                    _BucketPage(keys=[key], values=[value], used_bytes=need)
                )
                # Re-fetch: allocating may have evicted the bucket page.
                page = self.buffer.fetch(page_id)
                page.next_page = overflow
                self.buffer.mark_dirty(page_id)
                self._overflow_pages += 1
                return
            page_id = page.next_page

    # -- linear-hashing split ----------------------------------------------------------

    def _split_next(self) -> None:
        """Split the bucket at the split pointer (one bucket per call)."""
        victim = self._split_pointer
        new_index = len(self._buckets)
        self._buckets.append(self.buffer.new_page(_BucketPage()))
        self._split_pointer += 1
        if self._split_pointer == self._level_size:
            self._level_size *= 2
            self._split_pointer = 0

        # Collect the victim chain, then redistribute.
        entries: list[tuple[Any, Any]] = []
        page_id: int | None = self._buckets[victim]
        chain = []
        while page_id is not None:
            page = self.buffer.fetch(page_id)
            entries.extend(zip(page.keys, page.values))
            chain.append(page_id)
            page_id = page.next_page
        # Reset the victim to a single empty page; free its overflow pages.
        self.buffer.update(chain[0], _BucketPage())
        for overflow_id in chain[1:]:
            self.buffer.free_page(overflow_id)
            self._overflow_pages -= 1

        for key, value in entries:
            CPU_OPS.add(1)
            target = self._bucket_of(key)  # victim or new_index by construction
            self._insert_into_bucket(target, key, value)

    # -- search ----------------------------------------------------------------------

    def search(self, key: Any) -> list[Any]:
        """All values stored under exactly ``key``."""
        results = []
        page_id: int | None = self._buckets[self._bucket_of(key)]
        while page_id is not None:
            page: _BucketPage = self.buffer.fetch(page_id)
            CPU_OPS.add(len(page.keys))
            for stored, value in zip(page.keys, page.values):
                if stored == key:
                    results.append(value)
            page_id = page.next_page
        return results

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Every (key, value) pair, bucket by bucket (no order guarantee)."""
        for bucket_page in self._buckets:
            page_id: int | None = bucket_page
            while page_id is not None:
                page: _BucketPage = self.buffer.fetch(page_id)
                yield from zip(page.keys, page.values)
                page_id = page.next_page

    # -- delete -----------------------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> int:
        """Remove entries equal to ``key`` (and ``value`` when given)."""
        removed = 0
        page_id: int | None = self._buckets[self._bucket_of(key)]
        while page_id is not None:
            page: _BucketPage = self.buffer.fetch(page_id)
            kept = [
                (k, v)
                for k, v in zip(page.keys, page.values)
                if not (k == key and (value is None or v == value))
            ]
            if len(kept) != len(page.keys):
                removed += len(page.keys) - len(kept)
                page.keys = [k for k, _ in kept]
                page.values = [v for _, v in kept]
                page.used_bytes = sum(
                    _entry_bytes(k, v) for k, v in kept
                )
                self.buffer.mark_dirty(page_id)
            page_id = page.next_page
        if removed == 0:
            raise KeyNotFoundError(key)
        self._item_count -= removed
        return removed

    # -- statistics -------------------------------------------------------------------

    def __len__(self) -> int:
        return self._item_count

    @property
    def num_pages(self) -> int:
        return len(self._buckets) + self._overflow_pages

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    @property
    def height(self) -> int:
        """Bucket access depth proxy for the cost model (directory + page)."""
        return 1

    def check_invariants(self) -> None:
        """Every key must live in the bucket its hash addresses (test aid)."""
        for bucket, bucket_page in enumerate(self._buckets):
            page_id: int | None = bucket_page
            while page_id is not None:
                page: _BucketPage = self.buffer.fetch(page_id)
                for key in page.keys:
                    if self._bucket_of(key) != bucket:
                        raise AssertionError(
                            f"key {key!r} in bucket {bucket}, "
                            f"hashes to {self._bucket_of(key)}"
                        )
                page_id = page.next_page