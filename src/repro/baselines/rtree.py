"""Disk-based R-tree (Guttman) — the paper's spatial baseline.

One node per 8 KB page (PostgreSQL's pre-GiST rtree access method). Inserts
use ChooseLeaf by least area enlargement with quadratic split; deletes use
FindLeaf + CondenseTree with reinsertion, as in Guttman's original paper.

Leaf entries hold ``(mbr, key, value)`` where ``key`` is the indexed object
(a Point or LineSegment) and ``mbr`` its bounding box; inner entries hold
``(mbr, child_page)``. Supported searches: window intersection (the paper's
range/window search), exact object match, and containment of points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.costmodel import CPU_OPS
from repro.errors import KeyNotFoundError
from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.geometry.segment import LineSegment
from repro.storage.buffer import BufferPool
from repro.storage.page import ITEM_OVERHEAD, PAGE_CAPACITY, approx_size

#: Minimum fill fraction (Guttman's m as a fraction of M).
MIN_FILL = 0.40


def object_mbr(obj: Any) -> Box:
    """Minimum bounding rectangle of an indexable object."""
    if isinstance(obj, Point):
        return Box.from_point(obj)
    if isinstance(obj, LineSegment):
        return obj.bounding_box()
    if isinstance(obj, Box):
        return obj
    raise TypeError(f"R-tree cannot index objects of type {type(obj).__name__}")


def _leaf_entry_bytes(key: Any, value: Any) -> int:
    return 32 + approx_size(key) + approx_size(value) + ITEM_OVERHEAD


_INNER_ENTRY_BYTES = 32 + 8 + ITEM_OVERHEAD


@dataclass
class _Node:
    is_leaf: bool
    # Leaf entries: (Box, key, value); inner entries: (Box, child_page_id).
    entries: list[tuple] = field(default_factory=list)
    used_bytes: int = 0

    def mbr(self) -> Box:
        return Box.bounding([entry[0] for entry in self.entries])


class RTree:
    """A Guttman R-tree over the shared buffer pool.

    ``split`` selects the node-split heuristic: ``"quadratic"`` (Guttman's
    default here) or ``"linear"`` — the cheaper variant with visibly worse
    MBR overlap, which is what PostgreSQL's pre-GiST rtree access method
    (the paper's baseline) shipped.
    """

    def __init__(
        self,
        buffer: BufferPool,
        name: str = "rtree",
        split: str = "quadratic",
        page_capacity: int = PAGE_CAPACITY,
    ) -> None:
        if split not in ("quadratic", "linear"):
            raise ValueError(f"unknown split policy {split!r}")
        self.buffer = buffer
        self.name = name
        self.split_policy = split
        self.page_capacity = page_capacity
        self._page_ids: list[int] = []
        self.root_page = self._new_node(_Node(is_leaf=True))
        self._height = 1
        self._item_count = 0

    # -- page plumbing -----------------------------------------------------------

    def _new_node(self, node: _Node) -> int:
        page_id = self.buffer.new_page(node)
        self._page_ids.append(page_id)
        return page_id

    def _read(self, page_id: int) -> _Node:
        return self.buffer.fetch(page_id)

    def _write(self, page_id: int, node: _Node) -> None:
        self.buffer.update(page_id, node)

    def _free_node(self, page_id: int) -> None:
        self._page_ids.remove(page_id)
        self.buffer.free_page(page_id)

    # -- insert ---------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert object ``key`` with payload ``value``."""
        mbr = object_mbr(key)
        split = self._insert_entry(self.root_page, (mbr, key, value), self._height)
        if split is not None:
            self._grow_root(split)
        self._item_count += 1

    def _grow_root(self, split: tuple[int, int]) -> None:
        left_page, right_page = split
        left = self._read(left_page)
        left_mbr = left.mbr()
        right = self._read(right_page)
        right_mbr = right.mbr()
        new_root = _Node(
            is_leaf=False,
            entries=[(left_mbr, left_page), (right_mbr, right_page)],
            used_bytes=2 * _INNER_ENTRY_BYTES,
        )
        self.root_page = self._new_node(new_root)
        self._height += 1

    def _insert_entry(
        self, page_id: int, leaf_entry: tuple, levels_left: int
    ) -> tuple[int, int] | None:
        """Recursive ChooseLeaf + AdjustTree; returns (left, right) on split."""
        node = self._read(page_id)
        if node.is_leaf:
            node.entries.append(leaf_entry)
            node.used_bytes += _leaf_entry_bytes(leaf_entry[1], leaf_entry[2])
            if node.used_bytes > self.page_capacity:
                return self._split(page_id, node)
            self._write(page_id, node)
            return None

        mbr = leaf_entry[0]
        best_index = self._choose_subtree(node, mbr)
        child_page = node.entries[best_index][1]
        split = self._insert_entry(child_page, leaf_entry, levels_left - 1)
        if split is None:
            # AdjustTree: grow the chosen entry's MBR to cover the insert.
            child_mbr = node.entries[best_index][0].union(mbr)
            node.entries[best_index] = (child_mbr, child_page)
            self._write(page_id, node)
            return None
        left_page, right_page = split
        left_mbr = self._read(left_page).mbr()
        right_mbr = self._read(right_page).mbr()
        node.entries[best_index] = (left_mbr, left_page)
        node.entries.append((right_mbr, right_page))
        node.used_bytes += _INNER_ENTRY_BYTES
        if node.used_bytes > self.page_capacity:
            return self._split(page_id, node)
        self._write(page_id, node)
        return None

    @staticmethod
    def _choose_subtree(node: _Node, mbr: Box) -> int:
        """Guttman ChooseLeaf: least enlargement, then least area."""
        best_index = 0
        best_enlargement = float("inf")
        best_area = float("inf")
        CPU_OPS.add(len(node.entries))
        for index, entry in enumerate(node.entries):
            entry_mbr: Box = entry[0]
            enlargement = entry_mbr.enlargement(mbr)
            area = entry_mbr.area()
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_index = index
                best_enlargement = enlargement
                best_area = area
        return best_index

    # -- quadratic split -----------------------------------------------------------------

    def _split(self, page_id: int, node: _Node) -> tuple[int, int]:
        """Guttman node split (quadratic or linear seeds per policy)."""
        entries = node.entries
        if self.split_policy == "linear":
            seed_a, seed_b = self._pick_seeds_linear(entries)
        else:
            seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a][0]
        mbr_b = entries[seed_b][0]
        remaining = [
            entry
            for index, entry in enumerate(entries)
            if index not in (seed_a, seed_b)
        ]
        min_entries = max(1, int(len(entries) * MIN_FILL))

        while remaining:
            if len(group_a) + len(remaining) <= min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            index = self._pick_next(remaining, mbr_a, mbr_b)
            entry = remaining.pop(index)
            growth_a = mbr_a.enlargement(entry[0])
            growth_b = mbr_b.enlargement(entry[0])
            if growth_a < growth_b or (
                growth_a == growth_b and len(group_a) <= len(group_b)
            ):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry[0])
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry[0])

        node.entries = group_a
        node.used_bytes = self._entries_bytes(node.is_leaf, group_a)
        self._write(page_id, node)
        right = _Node(
            is_leaf=node.is_leaf,
            entries=group_b,
            used_bytes=self._entries_bytes(node.is_leaf, group_b),
        )
        right_page = self._new_node(right)
        return page_id, right_page

    @staticmethod
    def _entries_bytes(is_leaf: bool, entries: list[tuple]) -> int:
        if is_leaf:
            return sum(_leaf_entry_bytes(e[1], e[2]) for e in entries)
        return len(entries) * _INNER_ENTRY_BYTES

    @staticmethod
    def _pick_seeds(entries: list[tuple]) -> tuple[int, int]:
        """The pair wasting the most area when grouped together."""
        worst = (-1.0, 0, 1)
        for i in range(len(entries)):
            box_i: Box = entries[i][0]
            for j in range(i + 1, len(entries)):
                box_j: Box = entries[j][0]
                waste = box_i.union(box_j).area() - box_i.area() - box_j.area()
                if waste > worst[0]:
                    worst = (waste, i, j)
        return worst[1], worst[2]

    @staticmethod
    def _pick_seeds_linear(entries: list[tuple]) -> tuple[int, int]:
        """Guttman's LinearPickSeeds: extreme rectangles per dimension."""
        best_pair = (0, 1)
        best_separation = -1.0
        for axis in range(2):
            if axis == 0:
                lows = [e[0].xmin for e in entries]
                highs = [e[0].xmax for e in entries]
            else:
                lows = [e[0].ymin for e in entries]
                highs = [e[0].ymax for e in entries]
            width = max(highs) - min(lows)
            if width <= 0.0:
                continue
            highest_low = max(range(len(entries)), key=lambda i: lows[i])
            lowest_high = min(range(len(entries)), key=lambda i: highs[i])
            if highest_low == lowest_high:
                continue
            separation = (lows[highest_low] - highs[lowest_high]) / width
            if separation > best_separation:
                best_separation = separation
                best_pair = (lowest_high, highest_low)
        return best_pair

    @staticmethod
    def _pick_next(remaining: list[tuple], mbr_a: Box, mbr_b: Box) -> int:
        """The entry with the strongest group preference."""
        best_index = 0
        best_difference = -1.0
        for index, entry in enumerate(remaining):
            growth_a = mbr_a.enlargement(entry[0])
            growth_b = mbr_b.enlargement(entry[0])
            difference = abs(growth_a - growth_b)
            if difference > best_difference:
                best_difference = difference
                best_index = index
        return best_index

    # -- search -------------------------------------------------------------------------

    def window_search(self, window: Box) -> Iterator[tuple[Any, Any]]:
        """All ``(key, value)`` whose MBR intersects ``window``."""
        stack = [self.root_page]
        while stack:
            node = self._read(stack.pop())
            if node.is_leaf:
                for mbr, key, value in node.entries:
                    CPU_OPS.add(1)
                    if window.intersects(mbr):
                        yield key, value
                continue
            CPU_OPS.add(len(node.entries))
            for mbr, child_page in node.entries:
                if window.intersects(mbr):
                    stack.append(child_page)

    def search_exact(self, key: Any) -> list[tuple[Any, Any]]:
        """Entries whose object equals ``key`` exactly."""
        window = object_mbr(key)
        return [
            (found, value)
            for found, value in self.window_search(window)
            if found == key
        ]

    def search_contains_point(self, point: Point) -> list[tuple[Any, Any]]:
        """Point-match search: entries whose object is exactly ``point``."""
        return self.search_exact(point)

    def range_search(self, window: Box) -> list[tuple[Any, Any]]:
        """Window search with exact geometry filtering for segments."""
        results = []
        for key, value in self.window_search(window):
            if isinstance(key, LineSegment):
                if key.intersects_box(window):
                    results.append((key, value))
            elif isinstance(key, Point):
                if window.contains_point(key):
                    results.append((key, value))
            else:
                results.append((key, value))
        return results

    # -- delete -------------------------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> int:
        """Guttman delete: FindLeaf, remove, CondenseTree with reinsertion."""
        mbr = object_mbr(key)
        removed: list[tuple] = []
        self._delete_from(self.root_page, mbr, key, value, removed, orphans := [])
        if not removed:
            raise KeyNotFoundError(key)
        self._item_count -= len(removed)
        # Reinsert entries from condensed (underfull) nodes.
        for is_leaf, entries in orphans:
            for entry in entries:
                if is_leaf:
                    self._reinsert_leaf_entry(entry)
                else:
                    self._reinsert_subtree(entry)
        self._shrink_root()
        return len(removed)

    def _delete_from(
        self,
        page_id: int,
        mbr: Box,
        key: Any,
        value: Any,
        removed: list[tuple],
        orphans: list[tuple[bool, list[tuple]]],
    ) -> bool:
        """Returns True when this subtree changed (MBR must be recomputed)."""
        node = self._read(page_id)
        if node.is_leaf:
            kept = []
            for entry in node.entries:
                if entry[1] == key and (value is None or entry[2] == value):
                    removed.append(entry)
                else:
                    kept.append(entry)
            if len(kept) == len(node.entries):
                return False
            node.entries = kept
            node.used_bytes = self._entries_bytes(True, kept)
            self._write(page_id, node)
            return True

        changed = False
        kept_entries = []
        for entry_mbr, child_page in node.entries:
            if not entry_mbr.intersects(mbr):
                kept_entries.append((entry_mbr, child_page))
                continue
            child_changed = self._delete_from(
                child_page, mbr, key, value, removed, orphans
            )
            if not child_changed:
                kept_entries.append((entry_mbr, child_page))
                continue
            changed = True
            child = self._read(child_page)
            min_entries = 2 if not child.is_leaf else 1
            if len(child.entries) < min_entries:
                orphans.append((child.is_leaf, list(child.entries)))
                self._free_node(child_page)
            else:
                kept_entries.append((child.mbr(), child_page))
        if changed:
            node.entries = kept_entries
            node.used_bytes = self._entries_bytes(False, kept_entries)
            self._write(page_id, node)
        return changed

    def _reinsert_leaf_entry(self, entry: tuple) -> None:
        split = self._insert_entry(self.root_page, entry, self._height)
        if split is not None:
            self._grow_root(split)

    def _reinsert_subtree(self, entry: tuple) -> None:
        """Reinsert every leaf entry reachable from an orphaned inner entry."""
        stack = [entry[1]]
        while stack:
            page_id = stack.pop()
            node = self._read(page_id)
            if node.is_leaf:
                for leaf_entry in node.entries:
                    self._reinsert_leaf_entry(leaf_entry)
            else:
                stack.extend(child for _, child in node.entries)
            self._free_node(page_id)

    def _shrink_root(self) -> None:
        while True:
            root = self._read(self.root_page)
            if root.is_leaf or len(root.entries) != 1:
                return
            old_root = self.root_page
            self.root_page = root.entries[0][1]
            self._free_node(old_root)
            self._height -= 1

    # -- statistics ----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._item_count

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    @property
    def height(self) -> int:
        return self._height

    def check_invariants(self) -> None:
        """Every inner MBR covers its child's MBR (testing aid)."""
        stack = [self.root_page]
        while stack:
            node = self._read(stack.pop())
            if node.is_leaf:
                for mbr, key, _ in node.entries:
                    if not mbr.contains_box(object_mbr(key)):
                        raise AssertionError("leaf MBR does not cover object")
                continue
            for mbr, child_page in node.entries:
                child = self._read(child_page)
                if child.entries and not mbr.contains_box(child.mbr()):
                    raise AssertionError("inner MBR does not cover child")
                stack.append(child_page)
