"""One replicated "server": disk + buffer pool + engine stack + a role.

A :class:`StorageNode` owns a complete vertical slice of the system — a
:class:`~repro.storage.filedisk.FileDiskManager` (checksummed pages, WAL),
a :class:`~repro.storage.buffer.BufferPool`, and an engine
:class:`~repro.engine.table.Table` with one SP-GiST index — plus a
replication role:

- a **primary** runs writes through the engine, commits them (one WAL
  commit per client write), and frames each commit's records into a
  :class:`~repro.replication.segments.WALSegment` via a WAL commit
  listener;
- a **standby** has no local WAL: it applies shipped segments through the
  shared redo primitive
  (:meth:`~repro.storage.filedisk.FileDiskManager.apply_record`),
  checkpoints after each segment, and *revives* its in-memory engine
  objects from the replicated **meta page**.

The meta page (page id 0, allocated before any engine page) carries a
pickled snapshot of the engine's in-memory bookkeeping — heap page list,
tuple count, index root/page list/node count — written by the primary
immediately before every commit. Because it is an ordinary data page, it
replicates through the ordinary WAL stream: a standby that has applied
segment N holds, byte-for-byte, the primary's engine state as of commit N.
This is the reproduction's analogue of PostgreSQL's metapage-buffer
pattern (B-tree/SP-GiST metapages travel as plain WAL'd pages too).

Promotion (:meth:`StorageNode.promote`) turns a standby into a primary in
place: buffered out-of-order segments are truncated away (the divergence
truncation counted by ``replication_divergence_truncations_total``), a
fresh WAL is attached with its LSN floor raised past everything applied,
and a commit listener starts framing new segments from the applied commit
sequence onward.
"""

from __future__ import annotations

import os
import shutil
from typing import Any, Iterator

from repro.engine.catalog import default_catalog
from repro.engine.table import Column, Table, VacuumStats
from repro.engine.txn import TransactionManager
from repro.errors import ReplicaDivergedError, ReplicationError
from repro.obs import METRICS
from repro.replication.segments import WALSegment
from repro.storage.buffer import BufferPool
from repro.storage.filedisk import FileDiskManager
from repro.storage.heap import TupleId
from repro.storage.wal import REC_COMMIT

#: The engine-state snapshot page: always page id 0, always written last
#: before a commit, never read through the buffer pool.
META_PAGE_ID = 0

#: ``kind`` -> (column type, operator class, opclass kwargs): the schemas a
#: replicated node can serve. One indexed key column plus a row id, the
#: paper's Table 6 shape.
NODE_SCHEMAS: dict[str, tuple[str, str, dict]] = {
    "trie": ("varchar", "SP_GiST_trie", {"bucket_size": 4}),
    "kdtree": ("point", "SP_GiST_kdtree", {}),
    "pquad": ("point", "SP_GiST_pquadtree", {"bucket_size": 4}),
    "pmr": ("lseg", "SP_GiST_pmr", {}),
}

_SEGMENTS_SHIPPED = METRICS.counter(
    "replication_segments_shipped_total",
    "WAL segments framed by primaries for shipping",
)
_SEGMENTS_APPLIED = METRICS.counter(
    "replication_segments_applied_total",
    "WAL segments applied by standbys",
)
_SEGMENTS_DUPLICATE = METRICS.counter(
    "replication_segments_duplicate_total",
    "Shipped segments ignored as duplicates (seq already applied)",
)
_SEGMENTS_BUFFERED = METRICS.counter(
    "replication_segments_buffered_total",
    "Out-of-order segments held until the sequence gap closed",
)
_DIVERGENCE_TRUNCATIONS = METRICS.counter(
    "replication_divergence_truncations_total",
    "Buffered segments truncated away at promotion (WAL divergence)",
)

_INDEX_NAME = "replicated_idx"
_TABLE_NAME = "data"


class StorageNode:
    """A replication participant: primary, standby, or crashed.

    Build primaries with :meth:`create_primary` and standbys with
    :meth:`basebackup`; an existing data directory reopens through
    :meth:`restart`.
    """

    def __init__(
        self,
        name: str,
        path: str,
        kind: str,
        role: str,
        fsync: bool = True,
        pool_pages: int = 64,
    ) -> None:
        if kind not in NODE_SCHEMAS:
            raise ReplicationError(
                f"unknown node schema kind {kind!r}; "
                f"choose from {sorted(NODE_SCHEMAS)}"
            )
        if role not in ("primary", "standby"):
            raise ReplicationError(f"unknown role {role!r}")
        self.name = name
        self.path = path
        self.kind = kind
        self.role = role
        self.fsync = fsync
        self.pool_pages = pool_pages
        self.crashed = False
        #: Primary state.
        self.commit_seq = 0
        self.outbox: list[WALSegment] = []  # segments awaiting shipping
        self.archive: list[WALSegment] = []  # retransmit store
        self.archive_floor = 0  # lowest seq the archive can serve, minus one
        self._listener = None
        #: Standby state.
        self.applied_seq = 0
        self.applied_lsn = 0
        self._pending: dict[int, WALSegment] = {}
        self.needs_resync = False

        use_wal = role == "primary"
        self.disk = FileDiskManager(path, use_wal=use_wal, fsync=fsync)
        self.pool = BufferPool(self.disk, capacity=pool_pages)
        self.table: Table | None = None
        self._build_engine()

    # -- construction ---------------------------------------------------------

    @classmethod
    def create_primary(
        cls,
        name: str,
        path: str,
        kind: str,
        fsync: bool = True,
        pool_pages: int = 64,
    ) -> "StorageNode":
        """Initialize a brand-new primary data directory at ``path``."""
        if os.path.exists(path):
            raise ReplicationError(f"data file {path!r} already exists")
        node = cls(name, path, kind, "primary", fsync=fsync, pool_pages=pool_pages)
        node._attach_listener()
        node.commit()  # commit 1: the empty schema, so standbys can backup
        # Commit 1's earliest records predate the listener, so its archived
        # segment is incomplete; standbys bootstrap by basebackup (always at
        # seq >= 1), never by streaming from seq 0. Pruning makes any such
        # request an explicit full-resync instead of a silent gap.
        node.archive = []
        node.archive_floor = 1
        node.outbox = []
        return node

    @classmethod
    def reopen_primary(
        cls,
        name: str,
        path: str,
        kind: str,
        fsync: bool = True,
        pool_pages: int = 64,
    ) -> "StorageNode":
        """Cold-start a primary from an existing data directory.

        The same recovery path :meth:`restart` runs after a crash —
        opening the WAL replays committed records and discards the
        uncommitted tail, and the meta page names the commit the files
        represent — but reachable without a prior in-process crash, so a
        cluster can shut down cleanly and reopen its shards later.
        """
        if not os.path.exists(path):
            raise ReplicationError(f"data file {path!r} does not exist")
        node = cls(name, path, kind, "primary", fsync=fsync, pool_pages=pool_pages)
        node.commit_seq = node.meta_commit_seq
        node.archive = []
        node.archive_floor = node.commit_seq
        node.outbox = []
        node._attach_listener()
        return node

    @classmethod
    def basebackup(
        cls,
        primary: "StorageNode",
        name: str,
        path: str,
        fsync: bool = True,
        pool_pages: int = 64,
    ) -> "StorageNode":
        """Clone ``primary``'s checkpointed files into a new hot standby.

        The primary is checkpointed first (``disk.sync()``), then the data
        file and page table are copied; history up to the checkpoint
        transfers by file copy, everything after by the segment stream —
        PostgreSQL's ``pg_basebackup`` + streaming split. The caller must
        ship every segment committed *after* this call to the new standby.
        """
        primary._require_alive()
        primary.pool.flush_all()
        primary.disk.sync()  # no new commit seq: just make the files current
        for source, target in ((primary.path, path), (primary.path + ".map", path + ".map")):
            shutil.copyfile(source, target)
        node = cls(name, path, primary.kind, "standby", fsync=fsync, pool_pages=pool_pages)
        node.applied_seq = primary.commit_seq
        node.applied_lsn = primary.disk.map_lsn
        return node

    def _build_engine(self) -> None:
        """Create (or re-create) the Table + index objects over the disk.

        On a fresh primary this also allocates the meta page (id 0) and
        the initial empty snapshot; on any reopened/cloned directory the
        engine state is revived from the replicated meta page instead.
        """
        fresh = self.disk.num_pages == 0
        column_type, opclass_name, opclass_kwargs = NODE_SCHEMAS[self.kind]
        catalog = default_catalog()
        columns = [Column("key", column_type), Column("id", "int")]
        if fresh:
            meta_page = self.disk.allocate_page()
            if meta_page != META_PAGE_ID:
                raise ReplicationError(
                    f"meta page allocated as {meta_page}, expected {META_PAGE_ID}"
                )
        self.txn = TransactionManager()
        self.table = Table(_TABLE_NAME, columns, self.pool, catalog,
                           txn=self.txn)
        index = self.table.create_index(
            _INDEX_NAME, "key", opclass_name=opclass_name, **opclass_kwargs
        )
        if fresh:
            self._write_meta()
        else:
            self._revive_from_meta()
        _ = index

    # -- meta page: engine-state snapshot -------------------------------------

    def _write_meta(self) -> None:
        """Snapshot the engine's in-memory bookkeeping into page 0."""
        table = self.table
        assert table is not None
        index = table.indexes[_INDEX_NAME]
        store = index.structure.store
        meta = {
            "commit_seq": self.commit_seq,
            "kind": self.kind,
            "heap_page_ids": list(table.heap._page_ids),
            "heap_tuple_count": table.heap._tuple_count,
            "heap_free_slots": [
                (tid.page_id, tid.slot) for tid in table.heap._free_slots
            ],
            "distinct": dict(table._distinct_counts),
            "index_root": index.structure.root,
            "index_item_count": index.structure._item_count,
            "index_page_ids": list(store.page_ids),
            "index_num_nodes": store.num_nodes,
            "index_open_page_id": store._open_page_id,
            # The transaction manager's shippable state: xid counter plus
            # every closed clog verdict. In-flight transactions never ship,
            # so a standby revived from this meta exposes exactly the
            # committed snapshots — no dirty reads across failover.
            "txn": self.txn.state_snapshot(),
        }
        self.disk.write_page(META_PAGE_ID, meta)

    def _revive_from_meta(self) -> None:
        """Rebuild the engine's in-memory bookkeeping from page 0.

        The inverse of :meth:`_write_meta`: heap and node pages are already
        in the (replicated or recovered) page file; only the Python-object
        state that points into them needs restoring. Cached nodes and pool
        pages from before the refresh were dropped by the caller.
        """
        meta = self.disk.read_page(META_PAGE_ID)
        if not isinstance(meta, dict) or "commit_seq" not in meta:
            raise ReplicationError(
                f"node {self.name}: meta page is not an engine snapshot"
            )
        if meta["kind"] != self.kind:
            raise ReplicationError(
                f"node {self.name}: data directory holds a {meta['kind']!r} "
                f"schema, not {self.kind!r}"
            )
        table = self.table
        assert table is not None
        table.heap._page_ids = list(meta["heap_page_ids"])
        table.heap._page_id_set = set(meta["heap_page_ids"])
        table.heap._tuple_count = meta["heap_tuple_count"]
        free_slots = [
            TupleId(page_id, slot)
            for page_id, slot in meta.get("heap_free_slots", ())
        ]
        table.heap._free_slots = free_slots
        table.heap._free_slot_set = set(free_slots)
        table._distinct_counts = dict(meta["distinct"])
        txn_state = meta.get("txn")
        if txn_state is not None:
            self.txn.load_state(txn_state)
        index = table.indexes[_INDEX_NAME]
        structure = index.structure
        structure.root = meta["index_root"]
        structure._item_count = meta["index_item_count"]
        store = structure.store
        store.page_ids = list(meta["index_page_ids"])
        store.num_nodes = meta["index_num_nodes"]
        store._open_page_id = meta["index_open_page_id"]
        store.purge_cache()
        index.quarantined = False

    @property
    def meta_commit_seq(self) -> int:
        """The commit sequence recorded in the on-disk meta page."""
        meta = self.disk.read_page(META_PAGE_ID)
        return meta["commit_seq"]

    # -- primary: commit and ship ---------------------------------------------

    def _attach_listener(self) -> None:
        if self._listener is not None or self.disk.wal is None:
            return
        self._listener = self.disk.wal.add_commit_listener(self._on_commit)

    def _on_commit(self, payload: bytes, start_lsn: int, end_lsn: int) -> None:
        if self.commit_seq <= self.archive_floor + len(self.archive):
            # A sync not driven by commit() (basebackup checkpoint, close):
            # the records are already covered by an archived segment or by
            # the checkpointed files; nothing new to ship.
            return
        segment = WALSegment(
            seq=self.commit_seq,
            start_lsn=start_lsn,
            end_lsn=end_lsn,
            payload=payload,
        )
        self.archive.append(segment)
        self.outbox.append(segment)
        _SEGMENTS_SHIPPED.inc()

    def commit(self) -> int:
        """Commit all engine mutations since the last commit; frame a segment.

        The write path of a primary: snapshot the engine into the meta
        page, flush dirty pages (each logs a full page image), then
        ``disk.sync()`` — whose WAL commit fires the listener that frames
        this commit's records into the segment placed in :attr:`outbox`.
        Returns the new commit sequence number.
        """
        self._require_alive()
        if self.role != "primary":
            raise ReplicationError(f"node {self.name} is a standby; no commits")
        self.commit_seq += 1
        self._write_meta()
        self.pool.flush_all()
        # Transactions committed since the last WAL commit ride inside the
        # commit marker, so standby replay can apply the clog verdicts in
        # the same step that applies the pages.
        self.disk.sync(commit_xids=tuple(self.txn.drain_recent_commits()))
        return self.commit_seq

    def write_rows(self, rows: list[tuple], abort: bool = False) -> None:
        """Apply ``rows`` under one transaction (committed or rolled back).

        With ``abort=True`` the transaction is rolled back after the
        inserts: the versions (and their index entries) still exist on
        disk and replicate to standbys, but their xmin is aborted in the
        clog, so no snapshot anywhere ever sees them — the dirty-read
        probe the chaos harness leans on. The caller drives
        :meth:`commit` to make the outcome durable and shippable.
        """
        self._require_alive()
        if self.role != "primary":
            raise ReplicationError(f"node {self.name} is a standby; no writes")
        assert self.table is not None
        txn = self.txn.begin()
        if rows:
            self.table.insert_many(rows, txn=txn)
        if abort:
            self.txn.abort(txn)
        else:
            self.txn.commit(txn)

    def vacuum(self) -> VacuumStats:
        """Run a table VACUUM on this primary (caller commits afterwards)."""
        self._require_alive()
        if self.role != "primary":
            raise ReplicationError(f"node {self.name} is a standby; no vacuum")
        assert self.table is not None
        return self.table.vacuum()

    def repack_index(self, max_subtrees: int | None = None) -> Any:
        """Online-repack this primary's SP-GiST index (caller commits).

        Returns :class:`repro.core.tree.OnlineRepackStats`. The repack
        mutates index pages through the buffer pool, so the following
        :meth:`commit` ships the rewritten extent to standbys as ordinary
        full page images — the same WAL protocol as any write.
        """
        self._require_alive()
        if self.role != "primary":
            raise ReplicationError(f"node {self.name} is a standby; no repack")
        assert self.table is not None
        index = self.table.indexes[_INDEX_NAME]
        return index.structure.repack_online(max_subtrees=max_subtrees)

    def segments_since(self, seq: int) -> list[WALSegment]:
        """Archived segments with sequence numbers above ``seq``.

        Raises :class:`ReplicaDivergedError` when the archive has been
        pruned past ``seq`` — the requester must take a full resync.
        """
        if seq < self.archive_floor:
            raise ReplicaDivergedError(
                f"segment {seq + 1} is below node {self.name}'s archive floor "
                f"{self.archive_floor + 1}; full resync required"
            )
        return [segment for segment in self.archive if segment.seq > seq]

    # -- standby: apply -------------------------------------------------------

    def apply_segment(self, segment: WALSegment) -> str:
        """Apply one shipped segment; returns what happened.

        ``"applied"`` — the segment (and any buffered successors) replayed;
        ``"duplicate"`` — seq already applied, ignored; ``"buffered"`` —
        ahead of the next expected seq, held until the gap closes.
        """
        self._require_alive()
        if self.role != "standby":
            raise ReplicationError(f"node {self.name} is not a standby")
        if segment.seq <= self.applied_seq:
            _SEGMENTS_DUPLICATE.inc()
            return "duplicate"
        if segment.seq > self.applied_seq + 1:
            self._pending[segment.seq] = segment
            _SEGMENTS_BUFFERED.inc()
            return "buffered"
        self._apply_now(segment)
        while self.applied_seq + 1 in self._pending:
            self._apply_now(self._pending.pop(self.applied_seq + 1))
        return "applied"

    def _apply_now(self, segment: WALSegment) -> None:
        # Sequence contiguity (checked by the caller) guarantees no shipped
        # segment was skipped; the LSN check additionally rejects overlap —
        # a segment from a stale timeline. A forward LSN gap is legitimate:
        # checkpoint-only commits (basebackups, clean closes) consume a
        # commit-marker LSN without shipping a segment.
        if segment.start_lsn <= self.applied_lsn:
            self.needs_resync = True
            raise ReplicaDivergedError(
                f"node {self.name}: segment {segment.seq} starts at LSN "
                f"{segment.start_lsn}, already applied through "
                f"{self.applied_lsn}"
            )
        for record in segment.records():
            if record.rec_type == REC_COMMIT:
                # Commit records carry the xids they made durable; apply
                # their verdicts so the standby's clog tracks the stream
                # even before the meta-page refresh lands.
                for xid in record.xids:
                    self.txn.clog.set_committed(xid)
                continue
            self.disk.apply_record(record)
        self.disk.sync()
        self.applied_seq = segment.seq
        self.applied_lsn = segment.end_lsn
        _SEGMENTS_APPLIED.inc()
        self._refresh_engine()

    def _refresh_engine(self) -> None:
        """Re-read the engine state after new pages landed on disk."""
        self.pool.clear()  # eviction listeners drop cached nodes page by page
        self._revive_from_meta()

    @property
    def pending_count(self) -> int:
        """Out-of-order segments currently buffered."""
        return len(self._pending)

    # -- promotion ------------------------------------------------------------

    def promote(self) -> None:
        """Turn this standby into the primary, truncating divergence.

        Buffered out-of-order segments — records beyond the last applied
        commit — are discarded (the replication analogue of truncating a
        diverged WAL tail at timeline switch), a fresh local WAL is
        attached with its LSN floor above everything applied, and segment
        numbering continues from the applied commit sequence.
        """
        self._require_alive()
        if self.role == "primary":
            return
        if self._pending:
            _DIVERGENCE_TRUNCATIONS.inc(len(self._pending))
            self._pending.clear()
        wal = self.disk.enable_wal()
        wal.ensure_lsn_at_least(self.applied_lsn)
        self.role = "primary"
        self.commit_seq = self.applied_seq
        self.archive = []
        self.archive_floor = self.applied_seq
        self.outbox = []
        self._attach_listener()

    # -- crash / restart / resync ---------------------------------------------

    def crash(self, seed: int | None = None) -> None:
        """Kill the node: tear unsynced file tails, drop all memory state."""
        if self.crashed:
            return
        self.disk.simulate_crash(seed=seed)
        self.crashed = True
        self.outbox = []
        self._pending.clear()

    def restart(self) -> None:
        """Reopen a crashed node's data directory in its previous role.

        A primary runs WAL crash recovery (committed records replayed,
        uncommitted tail discarded) and resumes committing; its in-memory
        segment archive is gone, so standbys needing old segments must
        full-resync. A standby reopens from its last applied checkpoint.
        """
        if not self.crashed:
            raise ReplicationError(f"node {self.name} is not crashed")
        use_wal = self.role == "primary"
        self.disk = FileDiskManager(self.path, use_wal=use_wal, fsync=self.fsync)
        self.pool = BufferPool(self.disk, capacity=self.pool_pages)
        self.crashed = False
        self._listener = None
        self._pending.clear()
        self._detach_stores()
        self._build_engine()
        if self.role == "primary":
            # Recovery may have rolled back past unshipped commits; the
            # meta page says which commit the files actually represent.
            self.commit_seq = self.meta_commit_seq
            self.archive = []
            self.archive_floor = self.commit_seq
            self.outbox = []
            self._attach_listener()
        else:
            self.applied_seq = self.meta_commit_seq
            self.applied_lsn = self.disk.map_lsn

    def full_resync(self, primary: "StorageNode") -> None:
        """Re-seed this node from a fresh basebackup of ``primary``.

        The recovery path for a node whose timeline diverged (an old
        primary rejoining after failover) or whose gap fell below the
        primary's archive floor — the reproduction's ``pg_rewind``.
        """
        primary._require_alive()
        if self.crashed:
            raise ReplicationError(f"restart node {self.name} before resync")
        position = self.commit_seq if self.role == "primary" else self.applied_seq
        if position > primary.commit_seq:
            # This node holds commits the new primary never had (they were
            # never acknowledged): the rejoining side truncates them away.
            _DIVERGENCE_TRUNCATIONS.inc(position - primary.commit_seq)
        primary.pool.flush_all()
        primary.disk.sync()
        self.disk.close()
        for suffix in ("", ".map"):
            shutil.copyfile(primary.path + suffix, self.path + suffix)
        wal_path = self.path + ".wal"
        if os.path.exists(wal_path):
            os.remove(wal_path)  # divergent local history: truncated away
        self.role = "standby"
        self.disk = FileDiskManager(self.path, use_wal=False, fsync=self.fsync)
        self.pool = BufferPool(self.disk, capacity=self.pool_pages)
        self._listener = None
        self._pending.clear()
        self.needs_resync = False
        self.applied_seq = primary.commit_seq
        self.applied_lsn = primary.disk.map_lsn
        self._detach_stores()
        self._build_engine()

    def _detach_stores(self) -> None:
        """Unhook node-cache eviction listeners of a retired engine stack."""
        if self.table is None:
            return
        for index in self.table.indexes.values():
            detach = getattr(index.structure.store, "detach", None)
            if detach is not None:
                detach()
        self.table = None

    def close(self) -> None:
        """Cleanly shut the node down (no-op when crashed)."""
        if self.crashed:
            return
        if self.disk.wal is not None and self._listener is not None:
            self.disk.wal.remove_commit_listener(self._listener)
            self._listener = None
        self.disk.close()
        self._detach_stores()
        self.crashed = True

    def _require_alive(self) -> None:
        if self.crashed:
            raise ReplicationError(f"node {self.name} is crashed")

    # -- reads ----------------------------------------------------------------

    def rows(self) -> list[tuple]:
        """Every live row, in heap order (the logical-equivalence probe)."""
        self._require_alive()
        assert self.table is not None
        return [row for _tid, row in self.table.scan()]

    def search(self, op: str, operand: Any) -> Iterator[tuple]:
        """Run ``key <op> operand`` through the planner and executor."""
        from repro.engine.executor import execute_plan
        from repro.engine.planner import Predicate, plan_query

        self._require_alive()
        assert self.table is not None
        plan = plan_query(self.table, Predicate("key", op, operand))
        plan.served_by = self.name
        return execute_plan(plan)

    @property
    def index(self) -> Any:
        """The node's SP-GiST index structure (for ``spgist_check``)."""
        assert self.table is not None
        return self.table.indexes[_INDEX_NAME].structure

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "crashed" if self.crashed else self.role
        position = (
            f"commit_seq={self.commit_seq}"
            if self.role == "primary"
            else f"applied_seq={self.applied_seq}"
        )
        return f"<StorageNode {self.name} {status} {position}>"
