"""Physical replication: WAL shipping, hot standbys, automatic failover.

The paper realizes SP-GiST inside one PostgreSQL instance; the ROADMAP
north-star is a production-scale service, which must survive whole-node
loss. This package supplies the PostgreSQL-style replication substrate on
top of the storage stack that PRs 1–3 built:

- :mod:`repro.replication.segments` — the shippable unit: one commit's
  WAL records framed as a checksummed :class:`WALSegment`;
- :mod:`repro.replication.node` — :class:`StorageNode`, one "server": a
  :class:`~repro.storage.filedisk.FileDiskManager` + buffer pool + engine
  stack that can act as a WAL-emitting primary or a continuously-replaying
  hot standby, and can be promoted in place;
- :mod:`repro.replication.replicaset` — :class:`ReplicaSet`, the
  coordinator: synchronous-quorum writes, round-robin standby reads under
  a max-lag bound, heartbeat-based failure detection, election of the
  most-caught-up standby, and promotion with divergence truncation.

The shipping transport is in-process and seeded-fault-injectable
(:class:`repro.resilience.faults.FaultyChannel`); the end-to-end chaos
harness over all of it lives in :mod:`repro.resilience.chaos`.
"""

from repro.replication.node import META_PAGE_ID, StorageNode
from repro.replication.replicaset import ReplicaSet
from repro.replication.segments import WALSegment

__all__ = [
    "META_PAGE_ID",
    "ReplicaSet",
    "StorageNode",
    "WALSegment",
]
