"""The replica-set coordinator: quorum writes, routed reads, failover.

A :class:`ReplicaSet` owns one primary :class:`StorageNode` and N hot
standbys, each fed through its own seeded fault-injectable
:class:`~repro.resilience.faults.FaultyChannel`. It implements, in process,
the control loop a PostgreSQL HA stack (synchronous replication +
Patroni-style failover) runs across machines:

- **writes** (:meth:`client_write`) go to the primary, commit locally,
  ship the commit's WAL segment to every standby, and are acknowledged
  only once ``quorum`` standbys have *applied* it — so an acknowledged
  commit survives the loss of the primary plus any ``quorum - 1``
  standbys;
- **reads** (:meth:`client_read`) are routed round-robin over standbys
  whose replication lag (tracked in the ``repro.obs`` gauge
  ``replication_lag_segments``) is within ``max_lag``; with no eligible
  standby the primary serves them in degraded single-node mode (counted);
- **time** is logical: :meth:`tick` delivers in-flight frames, retransmits
  to stalled standbys, resyncs flagged ones, and counts the primary's
  missed heartbeats — after ``heartbeat_timeout`` consecutive misses the
  most-caught-up standby (highest applied commit, then LSN) is elected
  and promoted, with WAL divergence truncated.

Retransmission is pull-free: a standby whose channel has drained but whose
applied position trails the primary is assumed to have lost frames (the
only possibility on this transport) and is resent everything it misses
from the primary's in-memory segment archive; positions below the archive
floor (a restarted primary's archive is empty) force a full resync.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import (
    PrimaryUnavailableError,
    ReplicaDivergedError,
    ReplicationError,
    SegmentCorruptError,
)
from repro.obs import METRICS, span
from repro.replication.node import StorageNode
from repro.replication.segments import WALSegment
from repro.resilience.faults import ChannelFaultPolicy, FaultyChannel
from repro.settings import SETTINGS

_LAG = METRICS.gauge(
    "replication_lag_segments",
    "Commits the primary is ahead of each standby",
    labels=("node",),
)
_ROUTED_READS = METRICS.counter(
    "replication_routed_reads_total",
    "Reads served, by node",
    labels=("node",),
)
_DEGRADED_READS = METRICS.counter(
    "replication_degraded_reads_total",
    "Reads the primary served because no standby was within the lag bound",
)
_RETRANSMITS = METRICS.counter(
    "replication_retransmits_total",
    "Segments re-sent to standbys that lost frames",
)
_CORRUPT_FRAMES = METRICS.counter(
    "replication_corrupt_frames_total",
    "Shipped frames discarded for failing the segment checksum",
)
_FAILOVERS = METRICS.counter(
    "replication_failovers_total",
    "Automatic primary failovers completed",
)
_FAILOVER_TICKS = METRICS.gauge(
    "replication_last_failover_ticks",
    "Ticks from first missed heartbeat to promotion, last failover",
)
_FULL_RESYNCS = METRICS.counter(
    "replication_full_resyncs_total",
    "Standbys re-seeded from a fresh basebackup",
)
_ALIVE = METRICS.gauge(
    "replication_alive_nodes",
    "Nodes currently alive in the replica set",
)

#: Delivery/retransmit rounds a quorum wait runs before giving up; with
#: per-frame drop probability p the miss chance decays as p^rounds, so
#: even the chaos harness's p=0.25 channels converge in a handful.
_MAX_PUMP_ROUNDS = 64


@dataclass
class _Standby:
    """One standby and its shipping channel."""

    node: StorageNode
    channel: FaultyChannel
    policy: ChannelFaultPolicy = field(default_factory=ChannelFaultPolicy)


class ReplicaSet:
    """One primary plus N hot standbys behind fault-injectable channels.

    ``directory`` holds every node's data files (``node-<i>.dat`` etc.).
    ``channel_policies`` (optional) gives each standby's shipping channel
    its fault policy, in order; missing entries get clean channels.
    """

    def __init__(
        self,
        directory: str,
        kind: str = "trie",
        replicas: int = 2,
        quorum: int = 1,
        heartbeat_timeout: int | None = None,
        max_lag: int | None = None,
        fsync: bool = True,
        pool_pages: int = 64,
        channel_policies: Iterable[ChannelFaultPolicy] | None = None,
    ) -> None:
        if replicas < 1:
            raise ReplicationError("a replica set needs at least one standby")
        if quorum > replicas:
            raise ReplicationError(
                f"quorum {quorum} cannot exceed replica count {replicas}"
            )
        self.directory = directory
        self.kind = kind
        self.quorum = quorum
        # None -> the consolidated defaults in repro.settings.
        self.heartbeat_timeout = (
            SETTINGS.replication_heartbeat_timeout
            if heartbeat_timeout is None
            else heartbeat_timeout
        )
        self.max_lag = SETTINGS.replication_max_lag if max_lag is None else max_lag
        self.fsync = fsync
        self.pool_pages = pool_pages
        self.clock = 0
        self.failover_log: list[dict[str, Any]] = []
        self._missed_heartbeats = 0
        self._round_robin = 0
        self._node_counter = 0
        self.last_served_by = ""

        primary_path = self._path(0)
        if os.path.exists(primary_path):
            # Cold restart of an existing replica set: the primary reopens
            # through WAL recovery; standbys below re-seed by basebackup
            # (their previous files are overwritten — a standby's state is
            # always derivable from the primary's).
            self.primary = StorageNode.reopen_primary(
                self._next_name(), primary_path, kind,
                fsync=fsync, pool_pages=pool_pages,
            )
        else:
            self.primary = StorageNode.create_primary(
                self._next_name(), primary_path, kind,
                fsync=fsync, pool_pages=pool_pages,
            )
        self.standbys: list[_Standby] = []
        policies = list(channel_policies or [])
        for i in range(replicas):
            policy = policies[i] if i < len(policies) else ChannelFaultPolicy()
            self.add_standby(policy)
        self._update_gauges()

    # -- membership -----------------------------------------------------------

    def _next_name(self) -> str:
        name = f"node-{self._node_counter}"
        self._node_counter += 1
        return name

    def _path(self, index: int) -> str:
        return os.path.join(self.directory, f"node-{index}.dat")

    def add_standby(
        self, policy: ChannelFaultPolicy | None = None
    ) -> StorageNode:
        """Basebackup a new hot standby off the current primary."""
        self._require_primary()
        name = self._next_name()
        node = StorageNode.basebackup(
            self.primary,
            name,
            os.path.join(self.directory, f"{name}.dat"),
            fsync=self.fsync,
            pool_pages=self.pool_pages,
        )
        policy = policy or ChannelFaultPolicy()
        self.standbys.append(
            _Standby(node=node, channel=FaultyChannel(policy), policy=policy)
        )
        self._update_gauges()
        return node

    @property
    def nodes(self) -> list[StorageNode]:
        """Every member, primary first."""
        return [self.primary] + [entry.node for entry in self.standbys]

    def node(self, name: str) -> StorageNode:
        """Look a member up by name."""
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise ReplicationError(f"no node named {name!r}")

    # -- shipping pipeline ----------------------------------------------------

    def _ship_outbox(self) -> None:
        for segment in self.primary.outbox:
            frame = segment.encode()
            for entry in self.standbys:
                entry.channel.send(frame)
        self.primary.outbox.clear()

    def _deliver(self, entry: _Standby) -> None:
        """Drain one standby's channel into its apply loop."""
        if entry.node.crashed:
            entry.channel.poll()  # frames to a dead node are lost
            return
        for frame in entry.channel.poll():
            try:
                segment = WALSegment.decode(frame)
            except SegmentCorruptError:
                _CORRUPT_FRAMES.inc()
                continue  # wait for the retransmit path to resend it
            try:
                entry.node.apply_segment(segment)
            except ReplicaDivergedError:
                entry.node.needs_resync = True
                return

    def _retransmit(self, entry: _Standby) -> None:
        """Resend everything a drained-but-trailing standby is missing."""
        try:
            missing = self.primary.segments_since(entry.node.applied_seq)
        except ReplicaDivergedError:
            entry.node.needs_resync = True
            return
        for segment in missing:
            entry.channel.send(segment.encode())
            _RETRANSMITS.inc()

    def _resync(self, entry: _Standby) -> None:
        with span("replication.full_resync", node=entry.node.name):
            entry.node.full_resync(self.primary)
            entry.channel = FaultyChannel(entry.policy)  # stale frames dropped
        _FULL_RESYNCS.inc()

    def _pump(self) -> None:
        """One shipping round: outbox, deliveries, retransmits, resyncs."""
        primary_up = not self.primary.crashed
        if primary_up:
            self._ship_outbox()
        for entry in self.standbys:
            self._deliver(entry)
            if entry.node.crashed or not primary_up:
                continue
            if entry.node.needs_resync:
                self._resync(entry)
                continue
            behind = entry.node.applied_seq < self.primary.commit_seq
            if behind and entry.channel.in_flight == 0:
                self._retransmit(entry)

    # -- client API -----------------------------------------------------------

    def client_write(self, rows: list[tuple]) -> int:
        """Insert ``rows``, commit, and wait for quorum acknowledgement.

        Returns the acknowledged commit sequence. Raises
        :class:`PrimaryUnavailableError` with no live primary, and
        :class:`ReplicationError` when the quorum cannot be reached — in
        both cases the write is NOT acknowledged (it may or may not
        survive, exactly like an in-doubt transaction).
        """
        self._require_primary()
        self.primary.write_rows(rows)
        return self._commit_and_ack()

    def client_write_aborted(self, rows: list[tuple]) -> int:
        """Insert ``rows`` in a transaction that ROLLS BACK, then commit.

        The WAL commit still ships (the aborted versions' pages are real),
        but the clog verdict travels with it, so no node — primary,
        standby, or a post-failover promotee — ever shows the rows. The
        chaos harness uses this to assert snapshot isolation end to end.
        """
        self._require_primary()
        self.primary.write_rows(rows, abort=True)
        return self._commit_and_ack()

    def client_vacuum(self) -> int:
        """VACUUM the primary's table and replicate the reclamation."""
        self._require_primary()
        self.primary.vacuum()
        return self._commit_and_ack()

    def client_repack(self, max_subtrees: int | None = None) -> int:
        """Online-repack the primary's index; replicate the new layout.

        One bounded maintenance operation in the ``client_vacuum`` mould:
        the repacked extent travels as ordinary page images, so a standby
        that acknowledges the commit holds the re-clustered index
        byte-for-byte.
        """
        self._require_primary()
        self.primary.repack_index(max_subtrees)
        return self._commit_and_ack()

    def _commit_and_ack(self) -> int:
        seq = self.primary.commit()
        self._ship_outbox()
        if not self._await_quorum(seq):
            raise ReplicationError(
                f"commit {seq} not acknowledged by {self.quorum} standby(s)"
            )
        return seq

    def _await_quorum(self, target_seq: int) -> bool:
        if self.quorum <= 0:
            return True
        for _round in range(_MAX_PUMP_ROUNDS):
            acked = sum(
                1
                for entry in self.standbys
                if not entry.node.crashed
                and not entry.node.needs_resync
                and entry.node.applied_seq >= target_seq
            )
            if acked >= self.quorum:
                return True
            self._pump()
        return False

    def client_read(self, op: str, operand: Any) -> list[tuple]:
        """Answer ``key <op> operand`` from a routed node.

        Round-robin over alive standbys within the lag bound; primary
        fallback (degraded single-node mode) when none qualifies.
        """
        from repro.engine.executor import execute_plan
        from repro.engine.planner import Predicate, plan_query

        node = self._route_read()
        self.last_served_by = node.name
        _ROUTED_READS.labels(node.name).inc()
        assert node.table is not None
        plan = plan_query(node.table, Predicate("key", op, operand))
        plan.served_by = node.name

        def on_degrade(_index: Any, _incident: str, _exc: Exception) -> None:
            # A routed read tripped over corruption: the scan degraded to
            # the heap (still correct), and the node is flagged so the next
            # tick re-seeds it instead of serving degraded forever.
            if node.role == "standby":
                node.needs_resync = True

        return list(execute_plan(plan, on_degrade=on_degrade))

    def _route_read(self) -> StorageNode:
        if not self.primary.crashed:
            head = self.primary.commit_seq
        else:
            # Failover window: the crashed primary's head is unreadable,
            # but the lag bound must hold against the *next* epoch. The
            # most-caught-up live standby is exactly the node `_failover`
            # will elect, so its applied position is the head — a standby
            # trailing it by more than max_lag would serve rows the new
            # primary's epoch forbids, the staleness hole PR 10 closes.
            head = max(
                (
                    entry.node.applied_seq
                    for entry in self.standbys
                    if not entry.node.crashed and not entry.node.needs_resync
                ),
                default=None,
            )
        eligible = [
            entry.node
            for entry in self.standbys
            if not entry.node.crashed
            and not entry.node.needs_resync
            and (
                head is None
                or head - entry.node.applied_seq <= self.max_lag
            )
        ]
        if eligible:
            node = eligible[self._round_robin % len(eligible)]
            self._round_robin += 1
            return node
        if not self.primary.crashed:
            _DEGRADED_READS.inc()
            return self.primary
        raise PrimaryUnavailableError(
            "no primary and no eligible standby to serve reads"
        )

    # -- the control loop ------------------------------------------------------

    def tick(self) -> None:
        """Advance logical time: deliver, retransmit, heartbeat, failover."""
        self.clock += 1
        self._pump()
        if self.primary.crashed:
            self._missed_heartbeats += 1
            if self._missed_heartbeats >= self.heartbeat_timeout:
                self._failover()
        else:
            self._missed_heartbeats = 0
        self._update_gauges()

    def _failover(self) -> None:
        """Elect and promote the most-caught-up live standby."""
        candidates = [
            entry for entry in self.standbys if not entry.node.crashed
        ]
        if not candidates:
            return  # nothing to promote; retry on a later tick
        with span("replication.failover"):
            # Last-chance delivery: a candidate applies everything already
            # in its channel before positions are compared (PostgreSQL
            # promotes only after the standby finishes replaying received
            # WAL).
            for entry in candidates:
                self._deliver(entry)
            winner = max(
                candidates,
                key=lambda entry: (
                    entry.node.applied_seq,
                    entry.node.applied_lsn,
                    entry.node.name,
                ),
            )
            winner.node.promote()
            self.standbys.remove(winner)
            self.primary = winner.node
            for entry in self.standbys:
                if not entry.node.crashed:
                    # Followers of the old timeline re-seed from the new
                    # primary; their channels may hold stale frames.
                    entry.node.needs_resync = True
                entry.channel = FaultyChannel(entry.policy)
        _FAILOVERS.inc()
        _FAILOVER_TICKS.set(self._missed_heartbeats)
        self.failover_log.append(
            {
                "tick": self.clock,
                "elected": self.primary.name,
                "missed_heartbeats": self._missed_heartbeats,
                "commit_seq": self.primary.commit_seq,
            }
        )
        self._missed_heartbeats = 0

    def rejoin(self, node: StorageNode) -> None:
        """Bring a crashed member back.

        The still-current primary resumes its role after WAL crash
        recovery; any other node (including a deposed primary) restarts
        and re-seeds as a standby of the current primary.
        """
        if not node.crashed:
            return
        node.restart()
        if node is self.primary:
            self._missed_heartbeats = 0
            self._update_gauges()
            return
        if all(entry.node is not node for entry in self.standbys):
            # A deposed primary rejoining after failover.
            policy = ChannelFaultPolicy()
            self.standbys.append(
                _Standby(node=node, channel=FaultyChannel(policy), policy=policy)
            )
        node.needs_resync = True
        if not self.primary.crashed:
            for entry in self.standbys:
                if entry.node is node:
                    self._resync(entry)
        self._update_gauges()

    def catch_up(self, max_ticks: int = 200) -> bool:
        """Tick until every live standby has applied the primary's head."""
        for _ in range(max_ticks):
            if self.primary.crashed:
                self.tick()
                continue
            live = [e for e in self.standbys if not e.node.crashed]
            if all(
                e.node.applied_seq >= self.primary.commit_seq
                and not e.node.needs_resync
                for e in live
            ):
                return True
            self.tick()
        return False

    # -- bookkeeping ----------------------------------------------------------

    def lag_of(self, node: StorageNode) -> int:
        """Commits ``node`` trails the current primary by."""
        return max(0, self.primary.commit_seq - node.applied_seq)

    def _update_gauges(self) -> None:
        alive = sum(1 for node in self.nodes if not node.crashed)
        _ALIVE.set(alive)
        for entry in self.standbys:
            _LAG.labels(entry.node.name).set(self.lag_of(entry.node))

    def _require_primary(self) -> None:
        if self.primary.crashed:
            raise PrimaryUnavailableError(
                f"primary {self.primary.name} is down"
            )

    def close(self) -> None:
        """Shut every live member down cleanly."""
        for node in self.nodes:
            if not node.crashed:
                node.close()
