"""WAL segment framing: the unit a primary ships to its standbys.

Every :meth:`~repro.storage.wal.WriteAheadLog.commit` on the primary hands
its commit listeners the raw record bytes that commit made durable; a
:class:`WALSegment` wraps those bytes with a sequence number, the LSN range
they cover, and a CRC32 over the whole frame. Standbys apply segments
strictly in sequence order, so the header is what makes drops, reorders,
duplicates, and corruption *detectable*:

- a CRC mismatch (bit flip in flight) raises :class:`SegmentCorruptError`
  — the receiver discards the frame and waits for a retransmit;
- ``seq`` at or below the standby's applied position is a duplicate and is
  ignored (application is idempotent anyway, but skipping is cheaper);
- ``seq`` ahead of the next expected one is buffered until the gap closes
  (reordering) or re-requested (a drop).

Wire format::

    header := <seq:u64> <start_lsn:u64> <end_lsn:u64> <length:u32> <crc32:u32>
    frame  := header + payload        (payload = raw WAL record bytes)

The CRC covers the first three header fields plus the payload, so a flip
anywhere in the frame — header or body — is caught.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SegmentCorruptError
from repro.storage.wal import ReplayCursor, WALRecord

_SEGMENT_HEADER = struct.Struct("<QQQII")


@dataclass(frozen=True)
class WALSegment:
    """One commit's worth of WAL records, framed for shipping.

    ``seq`` equals the primary's commit sequence number at the commit that
    produced the segment; ``start_lsn``/``end_lsn`` bound the LSNs of the
    records inside (``end_lsn`` is the commit marker's LSN).
    """

    seq: int
    start_lsn: int
    end_lsn: int
    payload: bytes

    def encode(self) -> bytes:
        """Serialize to the checksummed wire frame."""
        crc = zlib.crc32(self.payload, zlib.crc32(
            _SEGMENT_HEADER.pack(self.seq, self.start_lsn, self.end_lsn, 0, 0)
        ))
        header = _SEGMENT_HEADER.pack(
            self.seq, self.start_lsn, self.end_lsn, len(self.payload), crc
        )
        return header + self.payload

    @classmethod
    def decode(cls, frame: bytes) -> "WALSegment":
        """Parse and verify a wire frame; raise on any corruption."""
        if len(frame) < _SEGMENT_HEADER.size:
            raise SegmentCorruptError(
                f"segment frame of {len(frame)} bytes is shorter than the "
                f"{_SEGMENT_HEADER.size}-byte header"
            )
        seq, start_lsn, end_lsn, length, crc = _SEGMENT_HEADER.unpack_from(frame)
        payload = frame[_SEGMENT_HEADER.size:]
        if len(payload) != length:
            raise SegmentCorruptError(
                f"segment {seq}: payload length {len(payload)} != header "
                f"length {length}"
            )
        expect = zlib.crc32(payload, zlib.crc32(
            _SEGMENT_HEADER.pack(seq, start_lsn, end_lsn, 0, 0)
        ))
        if crc != expect:
            raise SegmentCorruptError(f"segment {seq}: CRC mismatch")
        if end_lsn < start_lsn and length:
            raise SegmentCorruptError(
                f"segment {seq}: LSN range {start_lsn}..{end_lsn} is inverted"
            )
        return cls(seq=seq, start_lsn=start_lsn, end_lsn=end_lsn, payload=payload)

    def records(self) -> Iterator[WALRecord]:
        """Decode the payload's WAL records (commit markers included).

        Uses the shared :class:`~repro.storage.wal.ReplayCursor`, so a
        payload that somehow ends mid-record replays its complete prefix;
        the frame CRC makes that unreachable in practice, but the standby
        checks ``cursor.torn`` afterwards anyway.
        """
        cursor = ReplayCursor(
            self.payload,
            start_lsn=self.start_lsn - 1,
            origin=f"segment-{self.seq}",
        )
        yield from cursor
        if cursor.torn:
            raise SegmentCorruptError(
                f"segment {self.seq}: torn record inside a CRC-valid frame"
            )

    @property
    def size_bytes(self) -> int:
        """Frame size on the wire."""
        return _SEGMENT_HEADER.size + len(self.payload)
